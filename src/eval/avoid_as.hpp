// Experiment: avoiding an AS on the default path (Section 5.3).
//
// For sampled (source, destination, AS-to-avoid) tuples — the offending AS
// on the source's default path, never an immediate neighbor of the source —
// measures:
//   Table 5.2 — success rate of single-path BGP, MIRO under /s, /e, /a, and
//               unconstrained source routing;
//   Table 5.3 — for the tuples plain BGP cannot satisfy: MIRO success rate,
//               average ASes contacted, and average candidate paths received
//               per tuple, per policy;
//   Figs 5.4/5.5 — incremental deployment: fraction of the full-deployment
//               gain achieved when only the top x% of ASes by degree (or,
//               as the control, the bottom x%) run MIRO.
#pragma once

#include <iosfwd>
#include <vector>

#include "core/alternates.hpp"
#include "eval/experiments.hpp"

namespace miro::eval {

struct AvoidAsResult {
  std::string profile;
  std::size_t tuples = 0;

  // Table 5.2 row.
  double single_rate = 0;
  double multi_rate[3] = {0, 0, 0};   ///< indexed like kAllPolicies
  double source_rate = 0;

  // Table 5.3 rows (restricted to tuples where single-path fails).
  struct StateRow {
    core::ExportPolicy policy;
    std::size_t tuples = 0;
    double success_rate = 0;
    double avg_ases_contacted = 0;
    double avg_paths_received = 0;
  };
  std::vector<StateRow> state_rows;
};

AvoidAsResult run_avoid_as(const ExperimentPlan& plan);

void print_table_5_2(const AvoidAsResult& result, std::ostream& out);
void print_table_5_3(const AvoidAsResult& result, std::ostream& out);

/// Incremental deployment (Figures 5.4/5.5): success relative to ubiquitous
/// flexible-policy deployment, when only a fraction of ASes run MIRO.
struct DeploymentPoint {
  double fraction = 0;      ///< of ASes deployed
  double relative_gain[3] = {0, 0, 0};  ///< per policy, vs full /a
  double low_degree_first_gain = 0;     ///< control: /a, lowest degree first
};

struct DeploymentResult {
  std::string profile;
  std::vector<DeploymentPoint> points;
};

DeploymentResult run_incremental_deployment(const ExperimentPlan& plan);

void print(const DeploymentResult& result, std::ostream& out);

}  // namespace miro::eval
