#include "eval/experiments.hpp"

#include <algorithm>
#include <deque>
#include <memory>

#include "common/error.hpp"
#include "common/memtrack.hpp"
#include "common/parallel.hpp"
#include "obs/memstats.hpp"
#include "obs/profile.hpp"

namespace miro::eval {

ExperimentPlan::ExperimentPlan(const EvalConfig& config) : config_(config) {
  obs::ScopedSpan span(obs::profile(), "eval/plan", "eval");
  topo::GeneratorParams params = topo::profile(config.profile, config.scale);
  graph_ = std::make_unique<AsGraph>(topo::generate(params));
  solver_ = std::make_unique<StableRouteSolver>(*graph_);

  Rng rng(config.seed);
  const std::size_t n = graph_->node_count();
  const std::size_t samples = std::min(config.destination_samples, n);
  for (std::size_t index : rng.sample_indices(n, samples))
    destinations_.push_back(static_cast<NodeId>(index));
  std::sort(destinations_.begin(), destinations_.end());
  // Every per-destination solve is independent; fan out and collect the
  // trees in destination order so the plan is identical at any thread count.
  std::vector<std::unique_ptr<RoutingTree>> solved(destinations_.size());
  par::parallel_for(
      destinations_.size(),
      [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
        for (std::size_t i = begin; i != end; ++i) {
          solved[i] =
              std::make_unique<RoutingTree>(solver_->solve(destinations_[i]));
        }
      });
  trees_.reserve(destinations_.size());
  for (auto& tree : solved) trees_.push_back(std::move(*tree));

  // Walk-account the plan's two memory-dominant owners. A capacity walk of
  // identically-constructed containers, so the accounts (and the bench rows
  // derived from them) are bit-identical at any --threads count.
  if (obs::MemoryRegistry* mem = obs::memory()) {
    mem->account("topology/graph").set_current(graph_->memory_bytes());
    mem->account("eval/trees").set_current(trees_memory_bytes());
  }
}

std::uint64_t ExperimentPlan::trees_memory_bytes() const {
  std::uint64_t bytes = vector_bytes(trees_) + vector_bytes(destinations_);
  for (const RoutingTree& tree : trees_) bytes += tree.memory_bytes();
  return bytes;
}

std::uint64_t ExperimentPlan::route_count() const {
  std::uint64_t routes = 0;
  for (const RoutingTree& tree : trees_) routes += tree.reachable_count();
  return routes;
}

const RoutingTree* ExperimentPlan::tree_for(NodeId destination) const {
  const auto it = std::lower_bound(destinations_.begin(), destinations_.end(),
                                   destination);
  if (it == destinations_.end() || *it != destination) return nullptr;
  return &trees_[static_cast<std::size_t>(it - destinations_.begin())];
}

const std::vector<SampledPair>& ExperimentPlan::sample_pairs(
    std::size_t per_destination, std::uint64_t salt) const {
  const auto key = std::make_pair(per_destination, salt);
  const auto cached = pair_cache_.find(key);
  if (cached != pair_cache_.end()) return cached->second;

  std::vector<SampledPair> pairs;
  Rng rng(config_.seed ^ (salt + 0x5051));
  const std::size_t n = graph_->node_count();
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    const RoutingTree& tree = trees_[t];
    const std::size_t want = std::min(per_destination, n - 1);
    // Oversample to absorb the destination itself and unreachable sources.
    const std::size_t draw = std::min(n, want * 2 + 8);
    std::size_t taken = 0;
    for (std::size_t index : rng.sample_indices(n, draw)) {
      if (taken >= want) break;
      auto source = static_cast<NodeId>(index);
      if (source == tree.destination() || !tree.reachable(source)) continue;
      pairs.push_back({source, tree.destination(), t});
      ++taken;
    }
  }
  return pair_cache_.emplace(key, std::move(pairs)).first->second;
}

const std::vector<SampledTuple>& ExperimentPlan::sample_tuples(
    std::size_t per_destination, std::uint64_t salt) const {
  const auto key = std::make_pair(per_destination, salt);
  const auto cached = tuple_cache_.find(key);
  if (cached != tuple_cache_.end()) return cached->second;

  std::vector<SampledTuple> tuples;
  for (const SampledPair& pair : sample_pairs(per_destination, salt)) {
    const RoutingTree& tree = trees_[pair.tree_index];
    const std::vector<NodeId> path = tree.path_of(pair.source);
    // Intermediate ASes only; skip any AS adjacent to the source — "an AS
    // is not likely to distrust one of its own immediate neighbors" — and
    // the destination itself.
    for (std::size_t i = 2; i + 1 < path.size(); ++i) {
      if (graph_->has_edge(pair.source, path[i])) continue;
      tuples.push_back({pair.source, pair.destination, path[i],
                        pair.tree_index});
    }
  }
  return tuple_cache_.emplace(key, std::move(tuples)).first->second;
}

void ExperimentPlan::precompute_avoidance(
    const std::vector<SampledTuple>& tuples) const {
  obs::ScopedSpan span(obs::profile(), "eval/precompute_avoidance", "eval");
  // Distinct keys not yet cached, in sorted order so the fan-out (and the
  // cache layout it produces) is identical at any thread count.
  std::vector<std::pair<NodeId, NodeId>> missing;
  for (const SampledTuple& tuple : tuples) {
    const auto key = std::make_pair(tuple.destination, tuple.avoid);
    if (avoid_sets_.find(key) == avoid_sets_.end()) missing.push_back(key);
  }
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()), missing.end());

  const AsGraph& graph = *graph_;
  auto sets = par::parallel_map(
      missing, [&graph](const std::pair<NodeId, NodeId>& key) {
        // BFS from the destination with the avoided AS excised; answers
        // reachability for every source at once.
        std::vector<bool> reachable(graph.node_count(), false);
        std::vector<NodeId> frontier{key.first};
        reachable[key.first] = true;
        while (!frontier.empty()) {
          const NodeId node = frontier.back();
          frontier.pop_back();
          for (const topo::Neighbor& n : graph.neighbors(node)) {
            if (n.node == key.second || reachable[n.node]) continue;
            reachable[n.node] = true;
            frontier.push_back(n.node);
          }
        }
        return reachable;
      });
  for (std::size_t i = 0; i < missing.size(); ++i)
    avoid_sets_.emplace(missing[i], std::move(sets[i]));
}

const std::vector<bool>& ExperimentPlan::avoid_reachable(NodeId destination,
                                                         NodeId avoid) const {
  const auto it = avoid_sets_.find(std::make_pair(destination, avoid));
  require(it != avoid_sets_.end(),
          "avoid_reachable: key not precomputed (call precompute_avoidance)");
  return it->second;
}

bool reachable_avoiding(const AsGraph& graph, NodeId source,
                        NodeId destination, NodeId avoid) {
  if (source == avoid || destination == avoid) return false;
  if (source == destination) return true;
  std::vector<char> visited(graph.node_count(), 0);
  std::deque<NodeId> frontier;
  visited[source] = 1;
  visited[avoid] = 1;  // never enter the avoided AS
  frontier.push_back(source);
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop_front();
    for (const topo::Neighbor& n : graph.neighbors(node)) {
      if (visited[n.node]) continue;
      if (n.node == destination) return true;
      visited[n.node] = 1;
      frontier.push_back(n.node);
    }
  }
  return false;
}

}  // namespace miro::eval
