// Experiment: controlling incoming traffic (Section 5.4, Figures 5.6/5.7).
//
// A multi-homed stub AS wants to shift inbound load between its provider
// links. It finds a "power node" — an AS that many sources' default paths
// traverse — and negotiates with it to switch to an alternate route that
// enters the stub over a different incoming link. Traffic is the paper's
// uniform unit-per-source model. Two bounds are measured:
//   convert_all          — every source whose path traverses the power node
//                          follows it to the new link (upper bound);
//   independent_selection— the power node switches and re-advertises, and
//                          every other AS independently re-selects
//                          (lower bound; computed with a pinned re-solve).
// Both are swept under the strict and the most-flexible export policies.
#pragma once

#include <iosfwd>
#include <vector>

#include "core/export_policy.hpp"
#include "eval/experiments.hpp"

namespace miro::eval {

struct TrafficControlConfig {
  std::size_t stub_samples = 120;
  std::size_t power_node_candidates = 6;
  /// Alternate ingress links evaluated per power node.
  std::size_t alternates_per_power_node = 2;
};

struct TrafficControlResult {
  std::string profile;
  std::size_t stubs_evaluated = 0;

  /// Movable-traffic thresholds reported (fractions of total inbound).
  std::vector<double> thresholds;
  struct Series {
    core::ExportPolicy policy;
    bool convert_all = false;  ///< vs independent_selection
    /// fraction of stubs whose best single power node moves >= threshold[i].
    std::vector<double> stub_fraction;
    double median_best_move = 0;  ///< median over stubs of max movable share
  };
  std::vector<Series> series;  ///< 2 policies x 2 models

  /// Power-node analysis (Section 5.4's closing paragraph), over the best
  /// power node per stub under strict/convert_all.
  double power_top_degree_fraction = 0;  ///< among the top-degree ASes
  double power_neighbor_fraction = 0;    ///< immediate neighbor of the stub
  double power_two_hop_fraction = 0;     ///< exactly two AS hops away
};

TrafficControlResult run_traffic_control(const ExperimentPlan& plan,
                                         const TrafficControlConfig& config =
                                             {});

void print(const TrafficControlResult& result, std::ostream& out);

}  // namespace miro::eval
