// Shared plumbing for the Chapter 5 experiments.
//
// Every experiment runs over a named topology profile with deterministic
// sampling: destinations are sampled, one stable routing tree is solved per
// destination, and sources / avoid-AS tuples are sampled from each tree. All
// randomness flows from the config seed, so every bench regenerates
// identical tables.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bgp/route_solver.hpp"
#include "common/rng.hpp"
#include "topology/generator.hpp"

namespace miro::eval {

using bgp::RoutingTree;
using bgp::StableRouteSolver;
using topo::AsGraph;
using topo::NodeId;

struct EvalConfig {
  std::string profile = "gao2005";
  /// Shrinks the profile's node counts, for quick runs and tests.
  double scale = 1.0;
  std::size_t destination_samples = 100;
  std::size_t sources_per_destination = 50;
  std::uint64_t seed = 42;
};

/// One sampled (source, destination) pair with its default path.
struct SampledPair {
  NodeId source;
  NodeId destination;
  std::size_t tree_index;  ///< index into ExperimentPlan::trees
};

/// One sampled avoid-AS tuple: the offending AS lies on the source's default
/// path and is not an immediate neighbor of the source (Section 5.3's
/// exclusions).
struct SampledTuple {
  NodeId source;
  NodeId destination;
  NodeId avoid;
  std::size_t tree_index;
};

/// Pre-solved routing state shared by the experiments.
class ExperimentPlan {
 public:
  /// Generates the topology and solves trees for sampled destinations.
  explicit ExperimentPlan(const EvalConfig& config);

  const AsGraph& graph() const { return *graph_; }
  const StableRouteSolver& solver() const { return *solver_; }
  const std::vector<RoutingTree>& trees() const { return trees_; }
  const RoutingTree& tree(std::size_t index) const { return trees_[index]; }

  /// The pre-solved tree for `destination` when it is one of the sampled
  /// destinations, else nullptr. Experiments that pick their own targets
  /// (TE stubs, verification queries) check here before paying a fresh
  /// solve — at full scale a solve walks the whole 70k-node graph.
  const RoutingTree* tree_for(NodeId destination) const;

  /// Sampled (source, destination) pairs, `per_destination` per tree.
  /// Memoized per (per_destination, salt): the avoid-AS, negotiation-state,
  /// and incremental-deployment experiments all iterate the same tuple set,
  /// and re-deriving it walks every default path again. Not thread-safe;
  /// call from the serial orchestration layer (as the experiments do).
  const std::vector<SampledPair>& sample_pairs(std::size_t per_destination,
                                               std::uint64_t salt = 0) const;

  /// Sampled avoid-AS tuples derived from the pairs: every intermediate AS
  /// on the default path except the source's first hop and the destination.
  /// Memoized like sample_pairs.
  const std::vector<SampledTuple>& sample_tuples(std::size_t per_destination,
                                                 std::uint64_t salt = 0) const;

  /// Runs (in parallel, deterministically) the one-BFS-per-distinct
  /// (destination, avoid) source-routing reachability precomputation for
  /// the given tuples; already-cached keys are skipped. Call before fanning
  /// out workers that read avoid_reachable().
  void precompute_avoidance(const std::vector<SampledTuple>& tuples) const;

  /// The set of nodes that can still reach `destination` with `avoid`
  /// excised, indexed by node id. The key must have been precomputed; the
  /// returned reference is stable and safe to read from many threads. One
  /// BFS answers every source of that (destination, avoid), and the cache
  /// is shared across experiments instead of re-run per worker chunk.
  const std::vector<bool>& avoid_reachable(NodeId destination,
                                           NodeId avoid) const;

  const EvalConfig& config() const { return config_; }

  /// Deterministic footprint of the plan's routing state (capacity walk over
  /// the solved trees and destination list), and the route count behind the
  /// bytes_per_route bench rows: one route per reachable (node, tree) pair.
  std::uint64_t trees_memory_bytes() const;
  std::uint64_t route_count() const;

 private:
  EvalConfig config_;
  std::unique_ptr<AsGraph> graph_;
  std::unique_ptr<StableRouteSolver> solver_;
  std::vector<NodeId> destinations_;
  std::vector<RoutingTree> trees_;
  // Memoization caches; filled lazily from the serial experiment layer,
  // read-only once workers fan out. std::map keeps iteration (and thus any
  // accounting walk) deterministic.
  mutable std::map<std::pair<std::size_t, std::uint64_t>,
                   std::vector<SampledPair>>
      pair_cache_;
  mutable std::map<std::pair<std::size_t, std::uint64_t>,
                   std::vector<SampledTuple>>
      tuple_cache_;
  mutable std::map<std::pair<NodeId, NodeId>, std::vector<bool>>
      avoid_sets_;
};

/// True when `destination` is reachable from `source` in the graph with
/// `avoid` removed — the success criterion for unconstrained source routing
/// (Table 5.2's last column). BFS over the undirected graph.
bool reachable_avoiding(const AsGraph& graph, NodeId source,
                        NodeId destination, NodeId avoid);

}  // namespace miro::eval
