#include "eval/dataset_report.hpp"

#include <ostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "topology/generator.hpp"

namespace miro::eval {

void print_dataset_table(const std::vector<std::string>& profiles,
                         double scale, std::ostream& out) {
  out << "Table 5.1 — attributes of the (synthetic) data sets, scale="
      << scale << "\n";
  TextTable table({"Name", "# of Nodes", "# of Edges", "P/C links",
                   "Peering links", "Sibling links", "Stubs",
                   "Multi-homed stubs"});
  for (const std::string& profile : profiles) {
    const topo::AsGraph graph =
        topo::generate(topo::profile(profile, scale));
    const topo::TopologySummary summary = topo::summarize(graph);
    table.add_row({profile, std::to_string(summary.nodes),
                   std::to_string(summary.edges),
                   std::to_string(summary.customer_provider_links),
                   std::to_string(summary.peer_links),
                   std::to_string(summary.sibling_links),
                   std::to_string(summary.stub_count),
                   std::to_string(summary.multi_homed_stub_count)});
  }
  table.print(out);
}

void print_degree_distribution(const std::string& profile, double scale,
                               std::ostream& out) {
  const topo::AsGraph graph = topo::generate(topo::profile(profile, scale));
  out << "Figure 5.1 — node degree distribution [" << profile
      << ", n=" << graph.node_count() << "]\n";

  std::vector<double> degrees;
  degrees.reserve(graph.node_count());
  for (topo::NodeId id = 0; id < graph.node_count(); ++id)
    degrees.push_back(static_cast<double>(graph.degree(id)));

  TextTable table({"degree bucket", "nodes", "fraction"});
  const auto buckets = log2_histogram(degrees);
  for (const auto& bucket : buckets) {
    if (bucket.count == 0) continue;
    table.add_row(
        {"[" + TextTable::num(bucket.lower, 0) + ", " +
             TextTable::num(bucket.upper, 0) + ")",
         std::to_string(bucket.count),
         TextTable::percent(static_cast<double>(bucket.count) /
                            static_cast<double>(graph.node_count()))});
  }
  table.print(out);

  // The paper's headline cuts, scaled: "only 0.2% of the ASes has more than
  // 200 neighbors, and less than 1% has more than 40".
  out << "fraction with degree > 40: "
      << TextTable::percent(topo::fraction_with_degree_above(graph, 40), 2)
      << ", degree > 200: "
      << TextTable::percent(topo::fraction_with_degree_above(graph, 200), 2)
      << "\n";
}

}  // namespace miro::eval
