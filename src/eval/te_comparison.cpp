#include "eval/te_comparison.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <ostream>

#include "obs/profile.hpp"

#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace miro::eval {
namespace {

/// Ingress split toward `tree.destination()` under unit traffic per source.
std::map<NodeId, std::size_t> ingress_split(const topo::AsGraph& graph,
                                            const RoutingTree& tree,
                                            std::size_t& total) {
  std::map<NodeId, std::size_t> counts;
  total = 0;
  for (NodeId s = 0; s < graph.node_count(); ++s) {
    if (s == tree.destination() || !tree.reachable(s)) continue;
    ++total;
    ++counts[tree.ingress_neighbor(s)];
  }
  return counts;
}

}  // namespace

TeComparisonResult run_te_comparison(const ExperimentPlan& plan,
                                     const TeComparisonConfig& config) {
  obs::ScopedSpan span(obs::profile(), "eval/te_comparison", "eval");
  TeComparisonResult result;
  result.profile = plan.config().profile;
  const topo::AsGraph& graph = plan.graph();
  const StableRouteSolver& solver = plan.solver();

  std::vector<NodeId> stubs;
  for (NodeId node = 0; node < graph.node_count(); ++node)
    if (graph.is_multi_homed_stub(node)) stubs.push_back(node);
  Rng rng(plan.config().seed ^ 0xdeacc);
  rng.shuffle(stubs);
  if (stubs.size() > config.stub_samples) stubs.resize(config.stub_samples);
  result.stubs = stubs.size();

  Summary miro_moved;
  Summary deagg_moved;
  std::vector<Summary> prepend_moved(config.prepend_depths.size());
  Summary miro_error, deagg_error, prepend_error;
  const double target = config.target_shift;
  // Distance from the target to the closest shift the mechanism's knob menu
  // offers (doing nothing is always on the menu).
  auto targeting_error = [target](const std::vector<double>& menu) {
    double error = target;  // the "do nothing" option
    for (double option : menu)
      error = std::min(error, std::abs(option - target));
    return error;
  };

  // Every stub's solve-and-measure is independent; fan out, then fill the
  // Summary accumulators serially in stub order so the percentiles see the
  // serial value sequence at any thread count.
  struct StubOutcome {
    bool degenerate = false;
    double miro_moved = 0;
    double miro_error = 0;
    double deagg_moved = 0;
    double deagg_error = 0;
    std::vector<double> prepend_moved;
    double prepend_error = 0;
  };
  const auto outcomes = par::parallel_map(stubs, [&](NodeId stub) {
    StubOutcome outcome;
    // A sampled stub may coincide with one of the plan's pre-solved
    // destinations; tree_for is a read-only lookup, safe from workers.
    const RoutingTree* shared = plan.tree_for(stub);
    std::optional<RoutingTree> local;
    if (shared == nullptr) {
      local.emplace(solver.solve(stub));
      shared = &*local;
    }
    const RoutingTree& tree = *shared;
    std::size_t total = 0;
    const auto before = ingress_split(graph, tree, total);
    if (total == 0 || before.size() < 2) {
      outcome.degenerate = true;
      return outcome;
    }
    // The loaded link we want to unload and the share of the rest.
    auto loaded = std::max_element(
        before.begin(), before.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    const NodeId loaded_link = loaded->first;
    const double loaded_share =
        static_cast<double>(loaded->second) / static_cast<double>(total);

    // --- MIRO: best power node, strict policy, independent model. ---
    {
      std::vector<std::size_t> traverse(graph.node_count(), 0);
      for (NodeId s = 0; s < graph.node_count(); ++s) {
        if (s == stub || !tree.reachable(s)) continue;
        for (NodeId hop = tree.next_hop(s); hop != stub;
             hop = tree.next_hop(hop))
          ++traverse[hop];
      }
      std::vector<NodeId> candidates;
      for (NodeId node = 0; node < graph.node_count(); ++node)
        if (traverse[node] > 0) candidates.push_back(node);
      std::sort(candidates.begin(), candidates.end(),
                [&traverse](NodeId a, NodeId b) {
                  if (traverse[a] != traverse[b])
                    return traverse[a] > traverse[b];
                  return a < b;
                });
      if (candidates.size() > config.power_node_candidates)
        candidates.resize(config.power_node_candidates);
      std::vector<double> menu;  // every shift some negotiation can produce
      for (NodeId power : candidates) {
        const NodeId old_ingress = tree.ingress_neighbor(power);
        std::size_t tried = 0;
        for (const bgp::Route& alt : solver.candidates_at(tree, power)) {
          if (tried >= 2) break;
          if (bgp::rank(alt.route_class) !=
              bgp::rank(tree.route_class(power)))
            continue;  // strict policy
          const NodeId new_ingress = alt.path[alt.path.size() - 2];
          if (new_ingress == old_ingress) continue;
          ++tried;
          const RoutingTree pinned = solver.solve_pinned(
              stub, bgp::PinnedRoute{power, alt.path[1]});
          std::size_t after_total = 0;
          const auto after = ingress_split(graph, pinned, after_total);
          auto it = after.find(new_ingress);
          const double after_count =
              it == after.end() ? 0 : static_cast<double>(it->second);
          auto before_it = before.find(new_ingress);
          const double before_count =
              before_it == before.end()
                  ? 0
                  : static_cast<double>(before_it->second);
          menu.push_back(std::max(0.0, after_count - before_count) /
                         static_cast<double>(total));
        }
      }
      outcome.miro_moved =
          menu.empty() ? 0 : *std::max_element(menu.begin(), menu.end());
      outcome.miro_error = targeting_error(menu);
    }

    // --- Deaggregation: a /half more-specific via an underused provider.
    // Uniform traffic over the address space: the subprefix carries half of
    // every source's traffic, all of it now entering the chosen link.
    // Announcing the half-space subprefix via a quiet link moves the
    // subprefix half of every source that currently enters elsewhere; with
    // the quiet link chosen opposite the loaded one, the shift onto it is
    // half of the loaded link's share.
    const double deagg_shift = 0.5 * loaded_share;
    outcome.deagg_moved = deagg_shift;
    outcome.deagg_error = targeting_error({deagg_shift});

    // --- Prepending toward the loaded provider: one knob, a few depths. ---
    std::vector<double> prepend_menu;
    for (std::size_t k = 0; k < config.prepend_depths.size(); ++k) {
      const RoutingTree padded = solver.solve_prepended(
          stub, bgp::OriginPrepend{loaded_link, config.prepend_depths[k]});
      std::size_t after_total = 0;
      const auto after = ingress_split(graph, padded, after_total);
      auto it = after.find(loaded_link);
      const double still_there =
          it == after.end() ? 0 : static_cast<double>(it->second);
      const double moved = std::max(
          0.0, (static_cast<double>(loaded->second) - still_there) /
                   static_cast<double>(total));
      prepend_menu.push_back(moved);
    }
    outcome.prepend_moved = prepend_menu;
    outcome.prepend_error = targeting_error(prepend_menu);
    return outcome;
  });

  for (const StubOutcome& outcome : outcomes) {
    if (outcome.degenerate) {
      miro_moved.add(0);
      deagg_moved.add(0);
      for (auto& summary : prepend_moved) summary.add(0);
      miro_error.add(target);
      deagg_error.add(target);
      prepend_error.add(target);
      continue;
    }
    miro_moved.add(outcome.miro_moved);
    miro_error.add(outcome.miro_error);
    deagg_moved.add(outcome.deagg_moved);
    deagg_error.add(outcome.deagg_error);
    for (std::size_t k = 0; k < config.prepend_depths.size(); ++k)
      prepend_moved[k].add(outcome.prepend_moved[k]);
    prepend_error.add(outcome.prepend_error);
  }

  result.target_shift = target;
  auto mechanism = [&](std::string name, const Summary& moved,
                       const Summary& error, std::size_t state,
                       std::string granularity) {
    TeComparisonResult::Mechanism m;
    m.name = std::move(name);
    if (!moved.empty()) {
      m.median_moved = moved.percentile(50);
      m.p90_moved = moved.percentile(90);
      m.fraction_at_least_10 = moved.fraction_at_least(0.10);
    }
    if (!error.empty()) m.median_targeting_error = error.percentile(50);
    m.global_state_entries = state;
    m.granularity = std::move(granularity);
    return m;
  };
  result.mechanisms.push_back(mechanism("miro-tunnel", miro_moved,
                                        miro_error, 2, "per negotiation"));
  result.mechanisms.push_back(mechanism("deaggregate-half", deagg_moved,
                                        deagg_error, graph.node_count(),
                                        "halves of address space"));
  for (std::size_t k = 0; k < config.prepend_depths.size(); ++k)
    result.mechanisms.push_back(mechanism(
        "prepend-x" + std::to_string(config.prepend_depths[k]),
        prepend_moved[k], prepend_error, 0,
        "whole prefix, policy-dependent"));
  return result;
}

void print(const TeComparisonResult& result, std::ostream& out) {
  out << "Ablation — inbound TE mechanisms for multi-homed stubs ["
      << result.profile << ", " << result.stubs << " stubs]\n";
  TextTable table({"mechanism", "median moved", "p90 moved", ">=10% stubs",
                   "err@target " + TextTable::percent(result.target_shift, 0),
                   "extra state (entries)", "granularity"});
  for (const auto& m : result.mechanisms) {
    table.add_row({m.name, TextTable::percent(m.median_moved),
                   TextTable::percent(m.p90_moved),
                   TextTable::percent(m.fraction_at_least_10),
                   TextTable::percent(m.median_targeting_error),
                   std::to_string(m.global_state_entries), m.granularity});
  }
  table.print(out);
  out << "(deaggregation buys control by putting one more prefix into every "
         "AS's table; prepending is free but local-preference decisions "
         "ignore it; MIRO's state lives only at the two negotiating ASes)\n";
}

}  // namespace miro::eval
