// Ablation: MIRO vs today's blunt inbound-TE mechanisms.
//
// Section 1.2, footnote 1: more than 4,900 ASes "are announcing smaller
// subnets into BGP to exert control over incoming traffic. However,
// announcing small subnets increases routing-table size without providing
// precise control"; AS-path manipulation "may be easily nullified by other
// ASes' local policy". This experiment quantifies both claims against
// MIRO's power-node negotiation, per multi-homed stub:
//
//   MIRO             — best single power-node negotiation (strict policy,
//                      independent re-selection lower bound); costs tunnel
//                      state at exactly two ASes.
//   deaggregation    — announce one more-specific covering half the address
//                      space via the underused provider only; moves exactly
//                      half of every other link's share, at the cost of one
//                      extra prefix in EVERY AS's routing table.
//   prepend xK       — pad the AS path toward the most-loaded provider with
//                      K extra hops; free, but local preference is compared
//                      before path length, so the effect is erratic.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "eval/experiments.hpp"

namespace miro::eval {

struct TeComparisonResult {
  std::string profile;
  std::size_t stubs = 0;

  struct Mechanism {
    std::string name;
    double median_moved = 0;     ///< median over stubs, fraction of inbound
    double p90_moved = 0;
    double fraction_at_least_10 = 0;  ///< stubs moving >= 10%
    /// Precision: the stub wants to move exactly `target_shift` of its
    /// inbound traffic; this is the median over stubs of the distance
    /// between that target and the closest shift the mechanism's knob menu
    /// can actually produce ("without providing precise control").
    double median_targeting_error = 0;
    /// Extra forwarding/routing state, in table entries, summed over all
    /// ASes that must hold it.
    std::size_t global_state_entries = 0;
    std::string granularity;
  };
  std::vector<Mechanism> mechanisms;
  double target_shift = 0.15;
};

struct TeComparisonConfig {
  std::size_t stub_samples = 100;
  std::size_t power_node_candidates = 6;
  std::vector<std::uint32_t> prepend_depths{1, 2, 3};
  /// The inbound fraction the stub wants to shift (precision target).
  double target_shift = 0.15;
};

TeComparisonResult run_te_comparison(const ExperimentPlan& plan,
                                     const TeComparisonConfig& config = {});

void print(const TeComparisonResult& result, std::ostream& out);

}  // namespace miro::eval
