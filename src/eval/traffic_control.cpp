#include "eval/traffic_control.hpp"

#include <algorithm>
#include <optional>
#include <ostream>

#include "obs/profile.hpp"

#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "topology/metrics.hpp"

namespace miro::eval {
namespace {

/// Per-destination traffic view under uniform unit traffic per source.
struct TrafficView {
  std::vector<std::size_t> ingress_count;   // per ingress neighbor (node id)
  std::vector<std::size_t> traverse_count;  // sources whose path crosses node
  std::size_t total = 0;
};

TrafficView measure(const AsGraph& graph, const RoutingTree& tree) {
  TrafficView view;
  view.ingress_count.assign(graph.node_count(), 0);
  view.traverse_count.assign(graph.node_count(), 0);
  for (NodeId source = 0; source < graph.node_count(); ++source) {
    if (source == tree.destination() || !tree.reachable(source)) continue;
    ++view.total;
    // Walk the next-hop chain once, crediting every transit AS and the final
    // ingress neighbor.
    NodeId current = source;
    while (true) {
      const NodeId next = tree.next_hop(current);
      if (next == tree.destination()) {
        ++view.ingress_count[current];
        break;
      }
      ++view.traverse_count[next];
      current = next;
    }
  }
  return view;
}

}  // namespace

TrafficControlResult run_traffic_control(const ExperimentPlan& plan,
                                         const TrafficControlConfig& config) {
  obs::ScopedSpan span(obs::profile(), "eval/traffic_control", "eval");
  TrafficControlResult result;
  result.profile = plan.config().profile;
  result.thresholds = {0.05, 0.10, 0.15, 0.25, 0.35, 0.50};

  const AsGraph& graph = plan.graph();
  const StableRouteSolver& solver = plan.solver();

  // Sample multi-homed stubs deterministically.
  std::vector<NodeId> stubs;
  for (NodeId node = 0; node < graph.node_count(); ++node)
    if (graph.is_multi_homed_stub(node)) stubs.push_back(node);
  Rng rng(plan.config().seed ^ 0x7aff1cULL);
  rng.shuffle(stubs);
  if (stubs.size() > config.stub_samples) stubs.resize(config.stub_samples);
  result.stubs_evaluated = stubs.size();

  // High-degree cut for the power-node analysis: the top 0.2% by degree
  // (the paper's "more than 200 neighbors" ASes).
  const auto by_degree = topo::nodes_by_degree_descending(graph);
  std::vector<bool> top_degree(graph.node_count(), false);
  const std::size_t top_count =
      std::max<std::size_t>(1, graph.node_count() / 500);
  for (std::size_t i = 0; i < top_count; ++i) top_degree[by_degree[i]] = true;

  struct Key {
    core::ExportPolicy policy;
    bool convert_all;
  };
  const Key keys[] = {{core::ExportPolicy::Strict, true},
                      {core::ExportPolicy::Strict, false},
                      {core::ExportPolicy::Flexible, true},
                      {core::ExportPolicy::Flexible, false}};
  Summary best_move[4];

  std::size_t best_power_top_degree = 0;
  std::size_t best_power_neighbor = 0;
  std::size_t best_power_two_hop = 0;
  std::size_t stubs_with_power = 0;

  // Per-stub solves fan out; the Summary accumulators and the power-node
  // counters are then filled serially in stub order, keeping the output
  // bit-identical at any thread count.
  struct StubControl {
    double best[4] = {0, 0, 0, 0};
    NodeId best_power = topo::kInvalidNode;
    bool empty = false;  ///< no traffic: add zeros, skip power counters
    bool power_top_degree = false;
    bool power_neighbor = false;
    bool power_two_hop = false;
  };
  const auto controls = par::parallel_map(stubs, [&](NodeId stub) {
    StubControl control;
    // Reuse the plan's pre-solved tree when this stub was also a sampled
    // destination; tree_for is a read-only lookup, safe from workers.
    const RoutingTree* shared = plan.tree_for(stub);
    std::optional<RoutingTree> local;
    if (shared == nullptr) {
      local.emplace(solver.solve(stub));
      shared = &*local;
    }
    const RoutingTree& tree = *shared;
    const TrafficView view = measure(graph, tree);
    if (view.total == 0) {
      control.empty = true;
      return control;
    }

    // Candidate power nodes: the ASes most default paths traverse.
    std::vector<NodeId> candidates;
    for (NodeId node = 0; node < graph.node_count(); ++node)
      if (view.traverse_count[node] > 0) candidates.push_back(node);
    std::sort(candidates.begin(), candidates.end(),
              [&view](NodeId a, NodeId b) {
                if (view.traverse_count[a] != view.traverse_count[b])
                  return view.traverse_count[a] > view.traverse_count[b];
                return a < b;
              });
    if (candidates.size() > config.power_node_candidates)
      candidates.resize(config.power_node_candidates);

    double* best = control.best;
    NodeId& best_power_node = control.best_power;

    for (NodeId power : candidates) {
      if (power == stub || !tree.reachable(power)) continue;
      const NodeId old_ingress = tree.ingress_neighbor(power);
      const bgp::RouteClass current_class = tree.route_class(power);
      // Sources the power node controls in the convert_all model: everyone
      // routing through it, plus its own unit of traffic.
      const double convert_share =
          static_cast<double>(view.traverse_count[power] + 1) /
          static_cast<double>(view.total);

      std::size_t alternates_tried = 0;
      for (const bgp::Route& alt : solver.candidates_at(tree, power)) {
        if (alternates_tried >= config.alternates_per_power_node) break;
        const NodeId new_ingress = alt.path[alt.path.size() - 2];
        if (new_ingress == old_ingress) continue;  // same incoming link
        ++alternates_tried;

        // Independent re-selection, shared by both policies: pin the power
        // node to the alternate and let everyone else re-choose.
        const RoutingTree pinned =
            solver.solve_pinned(stub, bgp::PinnedRoute{power, alt.path[1]});
        const TrafficView after = measure(graph, pinned);
        const double delta =
            static_cast<double>(after.ingress_count[new_ingress]) -
            static_cast<double>(view.ingress_count[new_ingress]);
        const double independent_share =
            std::max(0.0, delta / static_cast<double>(view.total));

        for (std::size_t k = 0; k < 4; ++k) {
          if (keys[k].policy == core::ExportPolicy::Strict &&
              bgp::rank(alt.route_class) != bgp::rank(current_class))
            continue;  // strict: only same-class alternates
          const double moved =
              keys[k].convert_all ? convert_share : independent_share;
          if (moved > best[k]) {
            best[k] = moved;
            if (k == 0) best_power_node = power;  // strict/convert series
          }
        }
      }
    }

    if (best_power_node != topo::kInvalidNode) {
      control.power_top_degree = top_degree[best_power_node];
      control.power_neighbor = graph.has_edge(stub, best_power_node);
      control.power_two_hop = tree.path_length(best_power_node) == 2;
    }
    return control;
  });

  for (const StubControl& control : controls) {
    if (control.empty) {
      for (auto& summary : best_move) summary.add(0);
      continue;
    }
    for (std::size_t k = 0; k < 4; ++k) best_move[k].add(control.best[k]);
    if (control.best_power != topo::kInvalidNode) {
      ++stubs_with_power;
      if (control.power_top_degree) ++best_power_top_degree;
      if (control.power_neighbor) ++best_power_neighbor;
      if (control.power_two_hop) ++best_power_two_hop;
    }
  }

  for (std::size_t k = 0; k < 4; ++k) {
    TrafficControlResult::Series series;
    series.policy = keys[k].policy;
    series.convert_all = keys[k].convert_all;
    for (double threshold : result.thresholds)
      series.stub_fraction.push_back(
          best_move[k].empty() ? 0
                               : best_move[k].fraction_at_least(threshold));
    series.median_best_move =
        best_move[k].empty() ? 0 : best_move[k].percentile(50);
    result.series.push_back(std::move(series));
  }
  if (stubs_with_power > 0) {
    const auto denominator = static_cast<double>(stubs_with_power);
    result.power_top_degree_fraction =
        static_cast<double>(best_power_top_degree) / denominator;
    result.power_neighbor_fraction =
        static_cast<double>(best_power_neighbor) / denominator;
    result.power_two_hop_fraction =
        static_cast<double>(best_power_two_hop) / denominator;
  }
  return result;
}

void print(const TrafficControlResult& result, std::ostream& out) {
  out << "Figures 5.6/5.7 — multi-homed stubs with a power node that can "
         "move >= X of inbound traffic [" << result.profile << ", "
      << result.stubs_evaluated << " stubs]\n";
  std::vector<std::string> header{"policy", "model"};
  for (double threshold : result.thresholds)
    header.push_back(">=" + TextTable::percent(threshold, 0));
  header.push_back("median-best");
  TextTable table(header);
  for (const auto& series : result.series) {
    std::vector<std::string> row{core::to_string(series.policy),
                                 series.convert_all ? "convert"
                                                    : "independent"};
    for (double fraction : series.stub_fraction)
      row.push_back(TextTable::percent(fraction, 0));
    row.push_back(TextTable::percent(series.median_best_move, 1));
    table.add_row(std::move(row));
  }
  table.print(out);
  out << "power nodes: " << TextTable::percent(result.power_top_degree_fraction)
      << " top-degree, " << TextTable::percent(result.power_neighbor_fraction)
      << " immediate neighbors of the stub, "
      << TextTable::percent(result.power_two_hop_fraction)
      << " exactly two hops away\n";
}

}  // namespace miro::eval
