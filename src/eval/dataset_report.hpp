// Reports for Table 5.1 (dataset attributes) and Figure 5.1 (node degree
// distribution) over the synthetic topology profiles.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "topology/metrics.hpp"

namespace miro::eval {

/// Table 5.1 analog: one row per profile.
void print_dataset_table(const std::vector<std::string>& profiles,
                         double scale, std::ostream& out);

/// Figure 5.1 analog: log2-bucketed degree CCDF for one profile, plus the
/// high-degree fractions the dissertation quotes (0.2% with > 200 neighbors
/// scaled to graph size).
void print_degree_distribution(const std::string& profile, double scale,
                               std::ostream& out);

}  // namespace miro::eval
