#include "eval/path_diversity.hpp"

#include <array>
#include <ostream>

#include "obs/profile.hpp"

#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace miro::eval {

DiversityResult run_path_diversity(const ExperimentPlan& plan) {
  obs::ScopedSpan span(obs::profile(), "eval/path_diversity", "eval");
  DiversityResult result;
  result.profile = plan.config().profile;
  const core::AlternatesEngine engine(plan.solver());

  const auto& pairs =
      plan.sample_pairs(plan.config().sources_per_destination);

  constexpr core::NegotiationScope kScopes[] = {
      core::NegotiationScope::OneHop, core::NegotiationScope::OnPath};
  // All six (scope, policy) counts of one pair fan out together; the
  // Summary objects are then filled serially in pair order, so percentiles
  // see exactly the serial value sequence at any thread count.
  const auto pair_counts = par::parallel_map(
      pairs, [&](const SampledPair& pair) {
        std::array<double, 6> counts{};
        std::size_t slot = 0;
        for (core::NegotiationScope scope : kScopes) {
          for (core::ExportPolicy policy : core::kAllPolicies) {
            counts[slot++] = static_cast<double>(engine.count(
                plan.tree(pair.tree_index), pair.source, scope, policy));
          }
        }
        return counts;
      });
  std::size_t slot = 0;
  for (core::NegotiationScope scope : kScopes) {
    for (core::ExportPolicy policy : core::kAllPolicies) {
      Summary counts;
      for (std::size_t i = 0; i < pairs.size(); ++i)
        counts.add(pair_counts[i][slot]);
      ++slot;
      DiversityRow row;
      row.scope = scope;
      row.policy = policy;
      row.pairs = counts.count();
      if (!counts.empty()) {
        row.fraction_zero = counts.fraction_at_most(0);
        row.p25 = counts.percentile(25);
        row.p50 = counts.percentile(50);
        row.p75 = counts.percentile(75);
        row.p90 = counts.percentile(90);
        row.mean = counts.mean();
        row.max = counts.max();
      }
      result.rows.push_back(row);
    }
  }
  return result;
}

void print(const DiversityResult& result, std::ostream& out) {
  out << "Figures 5.2/5.3 — number of available alternate routes per "
         "(source, destination) pair [" << result.profile << "]\n";
  TextTable table({"scope", "policy", "pairs", "no-alt%", "p25", "median",
                   "p75", "p90", "mean", "max"});
  for (const DiversityRow& row : result.rows) {
    table.add_row({to_string(row.scope),
                   std::string(core::to_string(row.policy)) +
                       core::suffix(row.policy),
                   std::to_string(row.pairs),
                   TextTable::percent(row.fraction_zero),
                   TextTable::num(row.p25, 0), TextTable::num(row.p50, 0),
                   TextTable::num(row.p75, 0), TextTable::num(row.p90, 0),
                   TextTable::num(row.mean, 1), TextTable::num(row.max, 0)});
  }
  table.print(out);
}

}  // namespace miro::eval
