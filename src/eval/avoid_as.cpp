#include "eval/avoid_as.hpp"

#include <ostream>
#include <utility>

#include "obs/profile.hpp"

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "topology/metrics.hpp"

namespace miro::eval {
namespace {

double ratio(std::size_t num, std::size_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

AvoidAsResult run_avoid_as(const ExperimentPlan& plan) {
  obs::ScopedSpan span(obs::profile(), "eval/avoid_as", "eval");
  AvoidAsResult result;
  result.profile = plan.config().profile;
  const core::AlternatesEngine engine(plan.solver());
  const auto& tuples =
      plan.sample_tuples(plan.config().sources_per_destination);
  result.tuples = tuples.size();
  // Source-routing reachability: one BFS per distinct (destination, avoid)
  // pair, precomputed at plan level and shared read-only by every worker
  // chunk (and by any later experiment over the same tuples).
  plan.precompute_avoidance(tuples);

  // Per-tuple evaluations are independent; each chunk keeps its own
  // counters, merged after the join. Every merged quantity is a sum of
  // per-tuple integers, so the totals are identical at any thread count.
  struct Accum {
    std::size_t single_ok = 0;
    std::size_t source_ok = 0;
    std::size_t multi_ok[3] = {0, 0, 0};

    // Table 5.3 accumulators over single-path-failing tuples.
    std::size_t hard_tuples = 0;
    std::size_t hard_ok[3] = {0, 0, 0};
    std::size_t hard_contacted[3] = {0, 0, 0};
    std::size_t hard_paths[3] = {0, 0, 0};
  };

  std::vector<Accum> accums(par::chunk_count(tuples.size()));
  par::parallel_for(
      tuples.size(),
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        Accum& acc = accums[chunk];
        for (std::size_t i = begin; i != end; ++i) {
          const SampledTuple& tuple = tuples[i];
          const RoutingTree& tree = plan.tree(tuple.tree_index);

          bool single = false;
          bool policy_ok[3] = {false, false, false};
          std::size_t contacted[3] = {0, 0, 0};
          std::size_t paths[3] = {0, 0, 0};
          for (std::size_t p = 0; p < 3; ++p) {
            const auto outcome = engine.avoid_as(tree, tuple.source,
                                                 tuple.avoid,
                                                 core::kAllPolicies[p]);
            policy_ok[p] = outcome.success;
            contacted[p] = outcome.ases_contacted;
            paths[p] = outcome.paths_received;
            if (outcome.bgp_success) single = true;
          }
          if (single) ++acc.single_ok;
          for (std::size_t p = 0; p < 3; ++p)
            if (policy_ok[p]) ++acc.multi_ok[p];

          if (plan.avoid_reachable(tuple.destination,
                                   tuple.avoid)[tuple.source])
            ++acc.source_ok;

          if (!single) {
            ++acc.hard_tuples;
            for (std::size_t p = 0; p < 3; ++p) {
              if (policy_ok[p]) ++acc.hard_ok[p];
              acc.hard_contacted[p] += contacted[p];
              acc.hard_paths[p] += paths[p];
            }
          }
        }
      });

  std::size_t single_ok = 0;
  std::size_t source_ok = 0;
  std::size_t multi_ok[3] = {0, 0, 0};
  std::size_t hard_tuples = 0;
  std::size_t hard_ok[3] = {0, 0, 0};
  std::size_t hard_contacted[3] = {0, 0, 0};
  std::size_t hard_paths[3] = {0, 0, 0};
  for (const Accum& acc : accums) {
    single_ok += acc.single_ok;
    source_ok += acc.source_ok;
    hard_tuples += acc.hard_tuples;
    for (std::size_t p = 0; p < 3; ++p) {
      multi_ok[p] += acc.multi_ok[p];
      hard_ok[p] += acc.hard_ok[p];
      hard_contacted[p] += acc.hard_contacted[p];
      hard_paths[p] += acc.hard_paths[p];
    }
  }

  result.single_rate = ratio(single_ok, result.tuples);
  result.source_rate = ratio(source_ok, result.tuples);
  for (std::size_t p = 0; p < 3; ++p) {
    result.multi_rate[p] = ratio(multi_ok[p], result.tuples);
    AvoidAsResult::StateRow row;
    row.policy = core::kAllPolicies[p];
    row.tuples = hard_tuples;
    row.success_rate = ratio(hard_ok[p], hard_tuples);
    row.avg_ases_contacted =
        hard_tuples == 0 ? 0
                         : static_cast<double>(hard_contacted[p]) /
                               static_cast<double>(hard_tuples);
    row.avg_paths_received =
        hard_tuples == 0 ? 0
                         : static_cast<double>(hard_paths[p]) /
                               static_cast<double>(hard_tuples);
    result.state_rows.push_back(row);
  }
  return result;
}

void print_table_5_2(const AvoidAsResult& result, std::ostream& out) {
  out << "Table 5.2 — avoid-an-AS success rate by routing policy\n";
  TextTable table({"Name", "Single", "Multi/s", "Multi/e", "Multi/a",
                   "Source"});
  table.add_row({result.profile, TextTable::percent(result.single_rate),
                 TextTable::percent(result.multi_rate[0]),
                 TextTable::percent(result.multi_rate[1]),
                 TextTable::percent(result.multi_rate[2]),
                 TextTable::percent(result.source_rate)});
  table.print(out);
  out << "(" << result.tuples << " sampled (source, destination, avoid) "
      << "tuples)\n";
}

void print_table_5_3(const AvoidAsResult& result, std::ostream& out) {
  out << "Table 5.3 — negotiation state per tuple (single-path failures "
         "only) [" << result.profile << "]\n";
  TextTable table({"Policy", "Success Rate", "AS#/tuple", "Path#/tuple"});
  for (const auto& row : result.state_rows) {
    table.add_row({std::string(core::to_string(row.policy)) +
                       core::suffix(row.policy),
                   TextTable::percent(row.success_rate),
                   TextTable::num(row.avg_ases_contacted),
                   TextTable::num(row.avg_paths_received, 1)});
  }
  table.print(out);
}

DeploymentResult run_incremental_deployment(const ExperimentPlan& plan) {
  obs::ScopedSpan span(obs::profile(), "eval/incremental_deployment", "eval");
  DeploymentResult result;
  result.profile = plan.config().profile;
  const core::AlternatesEngine engine(plan.solver());
  const auto& all_tuples =
      plan.sample_tuples(plan.config().sources_per_destination);
  const auto by_degree = topo::nodes_by_degree_descending(plan.graph());
  const std::size_t n = plan.graph().node_count();

  // Deployment only matters where plain BGP fails; restrict to those tuples
  // and use ubiquitous flexible-policy deployment as the gain baseline.
  // Chunks filter independently and are concatenated in chunk order, which
  // preserves the serial tuple order exactly.
  struct FilterAccum {
    std::vector<SampledTuple> tuples;
    std::size_t base_ok = 0;
  };
  std::vector<FilterAccum> filtered(par::chunk_count(all_tuples.size()));
  par::parallel_for(
      all_tuples.size(),
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        FilterAccum& acc = filtered[chunk];
        for (std::size_t i = begin; i != end; ++i) {
          const SampledTuple& tuple = all_tuples[i];
          const auto outcome =
              engine.avoid_as(plan.tree(tuple.tree_index), tuple.source,
                              tuple.avoid, core::ExportPolicy::Flexible);
          if (outcome.bgp_success) continue;
          acc.tuples.push_back(tuple);
          if (outcome.success) ++acc.base_ok;
        }
      });
  std::vector<SampledTuple> tuples;
  std::size_t base_ok = 0;
  for (FilterAccum& acc : filtered) {
    tuples.insert(tuples.end(), acc.tuples.begin(), acc.tuples.end());
    base_ok += acc.base_ok;
  }
  if (base_ok == 0) return result;  // degenerate sample; nothing to plot

  const double fractions[] = {0.001, 0.002, 0.005, 0.01, 0.02,
                              0.05,  0.1,   0.2,   0.5,  1.0};
  for (double fraction : fractions) {
    const auto count = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(n) * fraction));
    std::vector<bool> top_deployed(n, false);
    std::vector<bool> bottom_deployed(n, false);
    for (std::size_t i = 0; i < count && i < n; ++i) {
      top_deployed[by_degree[i]] = true;
      bottom_deployed[by_degree[n - 1 - i]] = true;
    }

    // One fused pass per fraction: each chunk evaluates its tuples under
    // all three policies plus the low-degree control, keeping four success
    // counters that merge as order-independent sums.
    struct GainAccum {
      std::size_t ok[3] = {0, 0, 0};
      std::size_t low_ok = 0;
    };
    std::vector<GainAccum> gains(par::chunk_count(tuples.size()));
    par::parallel_for(
        tuples.size(),
        [&](std::size_t begin, std::size_t end, std::size_t chunk) {
          GainAccum& acc = gains[chunk];
          for (std::size_t i = begin; i != end; ++i) {
            const SampledTuple& tuple = tuples[i];
            const RoutingTree& tree = plan.tree(tuple.tree_index);
            for (std::size_t p = 0; p < 3; ++p) {
              if (engine
                      .avoid_as(tree, tuple.source, tuple.avoid,
                                core::kAllPolicies[p], &top_deployed)
                      .success)
                ++acc.ok[p];
            }
            if (engine
                    .avoid_as(tree, tuple.source, tuple.avoid,
                              core::ExportPolicy::Flexible, &bottom_deployed)
                    .success)
              ++acc.low_ok;
          }
        });

    DeploymentPoint point;
    point.fraction = static_cast<double>(count) / static_cast<double>(n);
    std::size_t ok[3] = {0, 0, 0};
    std::size_t low_ok = 0;
    for (const GainAccum& acc : gains) {
      for (std::size_t p = 0; p < 3; ++p) ok[p] += acc.ok[p];
      low_ok += acc.low_ok;
    }
    for (std::size_t p = 0; p < 3; ++p)
      point.relative_gain[p] = ratio(ok[p], base_ok);
    point.low_degree_first_gain = ratio(low_ok, base_ok);
    result.points.push_back(point);
  }
  return result;
}

void print(const DeploymentResult& result, std::ostream& out) {
  out << "Figures 5.4/5.5 — incremental deployment: fraction of "
         "full-deployment (/a) gain [" << result.profile << "]\n";
  TextTable table({"deployed%", "top-degree /s", "top-degree /e",
                   "top-degree /a", "low-degree-first /a"});
  for (const DeploymentPoint& point : result.points) {
    table.add_row({TextTable::percent(point.fraction, 1),
                   TextTable::percent(point.relative_gain[0]),
                   TextTable::percent(point.relative_gain[1]),
                   TextTable::percent(point.relative_gain[2]),
                   TextTable::percent(point.low_degree_first_gain)});
  }
  table.print(out);
}

}  // namespace miro::eval
