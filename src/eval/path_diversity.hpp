// Experiment: exposing the underlying path diversity (Figures 5.2 and 5.3).
//
// For sampled (source, destination) pairs, counts the distinct alternate
// end-to-end AS paths MIRO can expose, sweeping negotiation scope ("1-hop"
// vs "path") and export policy (strict /s, respect-export /e, flexible /a).
// The figures plot the sorted distribution; this reports its percentiles and
// the fraction of pairs with no alternates at all (the paper's "only 5% have
// no alternate paths in the worst case").
#pragma once

#include <iosfwd>
#include <vector>

#include "core/alternates.hpp"
#include "eval/experiments.hpp"

namespace miro::eval {

struct DiversityRow {
  core::NegotiationScope scope;
  core::ExportPolicy policy;
  std::size_t pairs = 0;
  double fraction_zero = 0;   ///< pairs with no alternate path
  double p25 = 0, p50 = 0, p75 = 0, p90 = 0;
  double mean = 0;
  double max = 0;
};

struct DiversityResult {
  std::string profile;
  std::vector<DiversityRow> rows;  ///< 2 scopes x 3 policies, paper order
};

DiversityResult run_path_diversity(const ExperimentPlan& plan);

/// Prints the figure's series as a table (and the raw CDF shape).
void print(const DiversityResult& result, std::ostream& out);

}  // namespace miro::eval
