// Deterministic fault injection for the control-plane message bus.
//
// The dissertation's soft-state design (Section 4.3) exists because control
// messages can be lost — "the active tunnel tear-down message itself may not
// be able to reach AS B". A binary link partition is the extreme case; real
// interdomain control channels lose, duplicate, and reorder individual
// messages. The FaultPlane models that regime: per-link probabilistic drop,
// duplication, and reorder-jitter, all driven by the repository's seeded Rng
// so every chaos run is reproducible bit-for-bit, with per-link and global
// counters so runs are observable after the fact.
//
// The plane is deliberately message-agnostic (it never sees payloads), which
// keeps it out of the MessageBus template: a bus consults the plane per send
// and the plane answers "deliver these copies, each this much later".
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "netsim/scheduler.hpp"
#include "obs/metrics.hpp"

namespace miro::sim {

/// Endpoint identifier — the MIRO control plane uses the dense AS node id.
using EndpointId = std::uint32_t;

/// Per-link fault regime. The zero-initialized profile is a perfect link.
/// Probabilities must be in [0, 1]; the plane validates on set (a NaN or
/// out-of-range value would silently corrupt a whole chaos run).
struct LinkFaultProfile {
  double drop = 0.0;       ///< per-message loss probability
  double duplicate = 0.0;  ///< probability a surviving message is doubled
  Time jitter_max = 0;     ///< extra delay, uniform in [0, jitter_max],
                           ///< drawn independently per copy (=> reordering)
};

class FaultPlane {
 public:
  explicit FaultPlane(std::uint64_t seed = 0xc4a05u);

  /// Fault regime for links without an explicit profile. Throws on a
  /// profile with probabilities outside [0, 1] (including NaN).
  void set_default_profile(const LinkFaultProfile& profile);

  /// Fault regime for one (symmetric) link, overriding the default. Throws
  /// on an invalid profile, naming the offending link.
  void set_link_profile(EndpointId a, EndpointId b,
                        const LinkFaultProfile& profile);

  const LinkFaultProfile& profile_of(EndpointId a, EndpointId b) const;

  /// Decides the fate of one message on the a->b link: the returned vector
  /// holds one extra-delay entry per copy to deliver (empty = dropped).
  /// Advances the Rng and the sent/dropped/duplicated counters. `now` is
  /// the send time; with it the plane books a `reordered` count for every
  /// copy whose jittered arrival (now + extra) undercuts a previously
  /// planned arrival on the same directed link — delivery inverting send
  /// order. (The bus's fixed per-link propagation delay shifts every copy
  /// equally, so it cancels out of the comparison.)
  std::vector<Time> plan(EndpointId from, EndpointId to, Time now = 0);

  /// Books a copy that actually reached an attached handler.
  void note_delivered(EndpointId from, EndpointId to);

  struct Counters {
    std::uint64_t sent = 0;        ///< messages offered to the plane
    std::uint64_t dropped = 0;     ///< messages the plane discarded
    std::uint64_t duplicated = 0;  ///< messages delivered as two copies
    std::uint64_t delivered = 0;   ///< copies that reached a handler
    std::uint64_t reordered = 0;   ///< copies planned to overtake an
                                   ///< earlier send on the same link
  };

  const Counters& totals() const { return totals_; }

  /// Counters for one link; a zero struct when the link saw no traffic.
  Counters link_counters(EndpointId a, EndpointId b) const;

  /// Snapshots the global counters into `registry` as `<prefix>.sent`,
  /// `<prefix>.dropped`, `<prefix>.duplicated`, `<prefix>.delivered`,
  /// `<prefix>.reordered` (values overwritten on repeated calls).
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "faults") const;

 private:
  /// Order-independent pair key (links are symmetric), matching MessageBus.
  static std::uint64_t key(EndpointId a, EndpointId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  /// Direction-sensitive key: reordering is a property of one flow.
  static std::uint64_t directed_key(EndpointId from, EndpointId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  Rng rng_;
  LinkFaultProfile default_profile_;
  std::unordered_map<std::uint64_t, LinkFaultProfile> profiles_;
  Counters totals_;
  std::unordered_map<std::uint64_t, Counters> per_link_;
  /// Latest planned arrival (send time + extra delay) per directed flow.
  std::unordered_map<std::uint64_t, Time> last_arrival_;
};

}  // namespace miro::sim
