// Typed point-to-point message delivery over the scheduler.
//
// Models the persistent control-plane sessions between MIRO speakers: ordered
// delivery with a per-link propagation delay, and an optional link-down state
// (used to exercise the soft-state keep-alive teardown: "when A can no longer
// reach B, the active tunnel tear-down message itself may not be able to
// reach AS B", Section 4.3).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/error.hpp"
#include "netsim/scheduler.hpp"

namespace miro::sim {

/// Endpoint identifier — the MIRO control plane uses the dense AS node id.
using EndpointId = std::uint32_t;

template <typename Message>
class MessageBus {
 public:
  using Handler = std::function<void(EndpointId from, const Message&)>;

  explicit MessageBus(Scheduler& scheduler, Time default_delay = 10)
      : scheduler_(&scheduler), default_delay_(default_delay) {}

  /// Registers the receive handler for an endpoint (replacing any previous).
  void attach(EndpointId endpoint, Handler handler) {
    require(static_cast<bool>(handler), "MessageBus::attach: empty handler");
    handlers_[endpoint] = std::move(handler);
  }

  /// Sends a message; it is delivered after the pair's delay unless the
  /// pair's link is down. Messages to unattached endpoints are dropped.
  void send(EndpointId from, EndpointId to, Message message) {
    if (is_down(from, to)) return;  // lost: the link is partitioned
    const Time delay = delay_of(from, to);
    scheduler_->after(delay, [this, from, to, msg = std::move(message)]() {
      if (is_down(from, to)) return;  // partitioned while in flight
      auto it = handlers_.find(to);
      if (it != handlers_.end()) it->second(from, msg);
    });
  }

  /// Sets the propagation delay between two endpoints (both directions).
  void set_delay(EndpointId a, EndpointId b, Time delay) {
    delays_[key(a, b)] = delay;
  }

  /// Partitions or heals the link between two endpoints.
  void set_link_down(EndpointId a, EndpointId b, bool down) {
    if (down) {
      down_.insert(key(a, b));
    } else {
      down_.erase(key(a, b));
    }
  }

  bool is_down(EndpointId a, EndpointId b) const {
    return down_.count(key(a, b)) != 0;
  }

  Scheduler& scheduler() { return *scheduler_; }

 private:
  /// Order-independent pair key (links are symmetric).
  static std::uint64_t key(EndpointId a, EndpointId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  Time delay_of(EndpointId a, EndpointId b) const {
    auto it = delays_.find(key(a, b));
    return it == delays_.end() ? default_delay_ : it->second;
  }

  Scheduler* scheduler_;
  Time default_delay_;
  std::unordered_map<EndpointId, Handler> handlers_;
  std::unordered_map<std::uint64_t, Time> delays_;
  std::unordered_set<std::uint64_t> down_;
};

}  // namespace miro::sim
