// Typed point-to-point message delivery over the scheduler.
//
// Models the control-plane sessions between MIRO speakers: delivery with a
// per-link propagation delay, an optional link-down state (used to exercise
// the soft-state keep-alive teardown: "when A can no longer reach B, the
// active tunnel tear-down message itself may not be able to reach AS B",
// Section 4.3), and an optional FaultPlane for per-message loss, duplication,
// and reorder-jitter (see netsim/fault_injection.hpp). Without a fault plane
// delivery is ordered per link; with jitter enabled copies may overtake each
// other, which is exactly the regime the retransmission layer must survive.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "netsim/fault_injection.hpp"
#include "netsim/scheduler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace miro::sim {

/// Per-bus delivery accounting. Every copy put on the wire has exactly one
/// terminal outcome; once all in-flight copies have drained,
///   sent + duplicates_scheduled ==
///       delivered + dropped_link_down + dropped_faults + dropped_unattached.
/// (A fault-plane duplication schedules an extra copy, which is counted in
/// duplicates_scheduled so its terminal outcome does not skew the balance.)
struct BusStats {
  std::uint64_t sent = 0;                  ///< send() calls
  std::uint64_t duplicates_scheduled = 0;  ///< extra fault-plane copies
  std::uint64_t delivered = 0;             ///< copies handed to a handler
  std::uint64_t dropped_link_down = 0;     ///< lost to a partitioned link
  std::uint64_t dropped_faults = 0;        ///< discarded by the fault plane
  std::uint64_t dropped_unattached = 0;    ///< no handler at the destination
};

template <typename Message>
class MessageBus {
 public:
  using Handler = std::function<void(EndpointId from, const Message&)>;

  explicit MessageBus(Scheduler& scheduler, Time default_delay = 10)
      : scheduler_(&scheduler), default_delay_(default_delay) {}

  /// Registers the receive handler for an endpoint (replacing any previous).
  void attach(EndpointId endpoint, Handler handler) {
    require(static_cast<bool>(handler), "MessageBus::attach: empty handler");
    handlers_[endpoint] = std::move(handler);
  }

  /// Sends a message; it is delivered after the pair's delay unless the
  /// pair's link is down or the fault plane discards it. Messages to
  /// unattached endpoints are dropped (and counted).
  void send(EndpointId from, EndpointId to, Message message) {
    ++stats_.sent;
    if (trace_ != nullptr)
      trace_->record({scheduler_->now(), obs::EventType::BusSend, from, to});
    if (is_down(from, to)) {  // lost: the link is partitioned
      drop(from, to, stats_.dropped_link_down, "link_down");
      return;
    }
    std::vector<Time> copies{0};
    if (fault_plane_ != nullptr) {
      copies = fault_plane_->plan(from, to, scheduler_->now());
      if (copies.empty()) {
        drop(from, to, stats_.dropped_faults, "faults");
        return;
      }
      if (copies.size() > 1) {
        stats_.duplicates_scheduled += copies.size() - 1;
        if (trace_ != nullptr) {
          trace_->record({scheduler_->now(), obs::EventType::BusDuplicate,
                          from, to, 0, 0,
                          static_cast<std::int64_t>(copies.size()), ""});
        }
      }
    }
    const Time delay = delay_of(from, to);
    for (std::size_t i = 0; i + 1 < copies.size(); ++i)
      schedule_delivery(from, to, delay + copies[i], message);
    schedule_delivery(from, to, delay + copies.back(), std::move(message));
  }

  /// Sets the propagation delay between two endpoints (both directions).
  void set_delay(EndpointId a, EndpointId b, Time delay) {
    delays_[key(a, b)] = delay;
  }

  /// Partitions or heals the link between two endpoints.
  void set_link_down(EndpointId a, EndpointId b, bool down) {
    if (down) {
      down_.insert(key(a, b));
    } else {
      down_.erase(key(a, b));
    }
  }

  bool is_down(EndpointId a, EndpointId b) const {
    return down_.count(key(a, b)) != 0;
  }

  /// Installs (or clears, with nullptr) the fault plane consulted per send.
  /// The plane must outlive the bus.
  void set_fault_plane(FaultPlane* plane) { fault_plane_ = plane; }
  FaultPlane* fault_plane() const { return fault_plane_; }

  /// Attaches (or clears, with nullptr) a trace recorder observing every
  /// send/deliver/drop/duplicate on this bus. Null recorder costs one
  /// branch per event and allocates nothing.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

  const BusStats& stats() const { return stats_; }

  /// Snapshots the delivery accounting into `registry` as counters named
  /// `<prefix>.sent`, `<prefix>.delivered`, ... (safe to call repeatedly;
  /// values are overwritten, and nothing references the bus afterwards).
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "bus") const {
    registry.counter(prefix + ".sent").set(stats_.sent);
    registry.counter(prefix + ".duplicates_scheduled")
        .set(stats_.duplicates_scheduled);
    registry.counter(prefix + ".delivered").set(stats_.delivered);
    registry.counter(prefix + ".dropped_link_down")
        .set(stats_.dropped_link_down);
    registry.counter(prefix + ".dropped_faults").set(stats_.dropped_faults);
    registry.counter(prefix + ".dropped_unattached")
        .set(stats_.dropped_unattached);
  }

  Scheduler& scheduler() { return *scheduler_; }

 private:
  void drop(EndpointId from, EndpointId to, std::uint64_t& bucket,
            const char* reason) {
    ++bucket;
    if (trace_ != nullptr) {
      trace_->record({scheduler_->now(), obs::EventType::BusDrop, from, to, 0,
                      0, 0, reason});
    }
  }

  void schedule_delivery(EndpointId from, EndpointId to, Time delay,
                         Message message) {
    scheduler_->after(delay, [this, from, to, msg = std::move(message)]() {
      if (is_down(from, to)) {  // partitioned while in flight
        drop(from, to, stats_.dropped_link_down, "link_down");
        return;
      }
      auto it = handlers_.find(to);
      if (it == handlers_.end()) {
        drop(from, to, stats_.dropped_unattached, "unattached");
        return;
      }
      ++stats_.delivered;
      if (trace_ != nullptr) {
        trace_->record(
            {scheduler_->now(), obs::EventType::BusDeliver, from, to});
      }
      if (fault_plane_ != nullptr) fault_plane_->note_delivered(from, to);
      it->second(from, msg);
    });
  }

  /// Order-independent pair key (links are symmetric).
  static std::uint64_t key(EndpointId a, EndpointId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  Time delay_of(EndpointId a, EndpointId b) const {
    auto it = delays_.find(key(a, b));
    return it == delays_.end() ? default_delay_ : it->second;
  }

  Scheduler* scheduler_;
  Time default_delay_;
  FaultPlane* fault_plane_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  std::unordered_map<EndpointId, Handler> handlers_;
  std::unordered_map<std::uint64_t, Time> delays_;
  std::unordered_set<std::uint64_t> down_;
  BusStats stats_;
};

}  // namespace miro::sim
