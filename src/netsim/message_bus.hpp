// Typed point-to-point message delivery over the scheduler.
//
// Models the control-plane sessions between MIRO speakers: delivery with a
// per-link propagation delay, an optional link-down state (used to exercise
// the soft-state keep-alive teardown: "when A can no longer reach B, the
// active tunnel tear-down message itself may not be able to reach AS B",
// Section 4.3), and an optional FaultPlane for per-message loss, duplication,
// and reorder-jitter (see netsim/fault_injection.hpp). Without a fault plane
// delivery is ordered per link; with jitter enabled copies may overtake each
// other, which is exactly the regime the retransmission layer must survive.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "netsim/fault_injection.hpp"
#include "netsim/scheduler.hpp"

namespace miro::sim {

/// Per-bus delivery accounting. Every send ends up in exactly one of
/// delivered / dropped_link_down / dropped_faults / dropped_unattached,
/// except that a fault-plane duplication can add a second terminal outcome
/// for the extra copy.
struct BusStats {
  std::uint64_t sent = 0;               ///< send() calls
  std::uint64_t delivered = 0;          ///< copies handed to a handler
  std::uint64_t dropped_link_down = 0;  ///< lost to a partitioned link
  std::uint64_t dropped_faults = 0;     ///< discarded by the fault plane
  std::uint64_t dropped_unattached = 0; ///< no handler at the destination
};

template <typename Message>
class MessageBus {
 public:
  using Handler = std::function<void(EndpointId from, const Message&)>;

  explicit MessageBus(Scheduler& scheduler, Time default_delay = 10)
      : scheduler_(&scheduler), default_delay_(default_delay) {}

  /// Registers the receive handler for an endpoint (replacing any previous).
  void attach(EndpointId endpoint, Handler handler) {
    require(static_cast<bool>(handler), "MessageBus::attach: empty handler");
    handlers_[endpoint] = std::move(handler);
  }

  /// Sends a message; it is delivered after the pair's delay unless the
  /// pair's link is down or the fault plane discards it. Messages to
  /// unattached endpoints are dropped (and counted).
  void send(EndpointId from, EndpointId to, Message message) {
    ++stats_.sent;
    if (is_down(from, to)) {  // lost: the link is partitioned
      ++stats_.dropped_link_down;
      return;
    }
    std::vector<Time> copies{0};
    if (fault_plane_ != nullptr) {
      copies = fault_plane_->plan(from, to);
      if (copies.empty()) {
        ++stats_.dropped_faults;
        return;
      }
    }
    const Time delay = delay_of(from, to);
    for (std::size_t i = 0; i + 1 < copies.size(); ++i)
      schedule_delivery(from, to, delay + copies[i], message);
    schedule_delivery(from, to, delay + copies.back(), std::move(message));
  }

  /// Sets the propagation delay between two endpoints (both directions).
  void set_delay(EndpointId a, EndpointId b, Time delay) {
    delays_[key(a, b)] = delay;
  }

  /// Partitions or heals the link between two endpoints.
  void set_link_down(EndpointId a, EndpointId b, bool down) {
    if (down) {
      down_.insert(key(a, b));
    } else {
      down_.erase(key(a, b));
    }
  }

  bool is_down(EndpointId a, EndpointId b) const {
    return down_.count(key(a, b)) != 0;
  }

  /// Installs (or clears, with nullptr) the fault plane consulted per send.
  /// The plane must outlive the bus.
  void set_fault_plane(FaultPlane* plane) { fault_plane_ = plane; }
  FaultPlane* fault_plane() const { return fault_plane_; }

  const BusStats& stats() const { return stats_; }

  Scheduler& scheduler() { return *scheduler_; }

 private:
  void schedule_delivery(EndpointId from, EndpointId to, Time delay,
                         Message message) {
    scheduler_->after(delay, [this, from, to, msg = std::move(message)]() {
      if (is_down(from, to)) {  // partitioned while in flight
        ++stats_.dropped_link_down;
        return;
      }
      auto it = handlers_.find(to);
      if (it == handlers_.end()) {
        ++stats_.dropped_unattached;
        return;
      }
      ++stats_.delivered;
      if (fault_plane_ != nullptr) fault_plane_->note_delivered(from, to);
      it->second(from, msg);
    });
  }

  /// Order-independent pair key (links are symmetric).
  static std::uint64_t key(EndpointId a, EndpointId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  Time delay_of(EndpointId a, EndpointId b) const {
    auto it = delays_.find(key(a, b));
    return it == delays_.end() ? default_delay_ : it->second;
  }

  Scheduler* scheduler_;
  Time default_delay_;
  FaultPlane* fault_plane_ = nullptr;
  std::unordered_map<EndpointId, Handler> handlers_;
  std::unordered_map<std::uint64_t, Time> delays_;
  std::unordered_set<std::uint64_t> down_;
  BusStats stats_;
};

}  // namespace miro::sim
