#include "netsim/fault_injection.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"

namespace miro::sim {

namespace {

void validate_profile(const LinkFaultProfile& profile,
                      const std::string& link_name) {
  // NaN fails every comparison, so express the checks as "must be inside
  // the closed interval" and reject anything that is not.
  const bool drop_ok = profile.drop >= 0.0 && profile.drop <= 1.0;
  const bool duplicate_ok =
      profile.duplicate >= 0.0 && profile.duplicate <= 1.0;
  if (!drop_ok) {
    throw Error("LinkFaultProfile for " + link_name + ": drop must be in "
                "[0, 1], got " + std::to_string(profile.drop));
  }
  if (!duplicate_ok) {
    throw Error("LinkFaultProfile for " + link_name + ": duplicate must be "
                "in [0, 1], got " + std::to_string(profile.duplicate));
  }
  // jitter_max is unsigned, so "jitter_max >= 0" holds by construction; a
  // negative literal would already fail to convert at the call site.
}

}  // namespace

FaultPlane::FaultPlane(std::uint64_t seed) : rng_(seed) {}

void FaultPlane::set_default_profile(const LinkFaultProfile& profile) {
  validate_profile(profile, "default link");
  default_profile_ = profile;
}

void FaultPlane::set_link_profile(EndpointId a, EndpointId b,
                                  const LinkFaultProfile& profile) {
  validate_profile(profile, "link " + std::to_string(a) + "-" +
                                std::to_string(b));
  profiles_[key(a, b)] = profile;
}

const LinkFaultProfile& FaultPlane::profile_of(EndpointId a,
                                               EndpointId b) const {
  auto it = profiles_.find(key(a, b));
  return it == profiles_.end() ? default_profile_ : it->second;
}

std::vector<Time> FaultPlane::plan(EndpointId from, EndpointId to, Time now) {
  const LinkFaultProfile& profile = profile_of(from, to);
  Counters& link = per_link_[key(from, to)];
  ++totals_.sent;
  ++link.sent;
  if (profile.drop > 0.0 && rng_.chance(profile.drop)) {
    ++totals_.dropped;
    ++link.dropped;
    return {};
  }
  std::vector<Time> copies;
  copies.push_back(profile.jitter_max == 0
                       ? 0
                       : rng_.next_below(profile.jitter_max + 1));
  if (profile.duplicate > 0.0 && rng_.chance(profile.duplicate)) {
    ++totals_.duplicated;
    ++link.duplicated;
    copies.push_back(profile.jitter_max == 0
                         ? 0
                         : rng_.next_below(profile.jitter_max + 1));
  }
  // Reorder accounting: a copy arriving before the latest previously
  // planned arrival on this directed flow overtakes an earlier send.
  const std::uint64_t flow = directed_key(from, to);
  const auto it = last_arrival_.find(flow);
  Time latest = it == last_arrival_.end() ? 0 : it->second;
  const bool seen = it != last_arrival_.end();
  for (const Time extra : copies) {
    const Time arrival = now + extra;
    if (seen && arrival < latest) {
      ++totals_.reordered;
      ++link.reordered;
    }
    latest = std::max(latest, arrival);
  }
  last_arrival_[flow] = latest;
  return copies;
}

void FaultPlane::note_delivered(EndpointId from, EndpointId to) {
  ++totals_.delivered;
  ++per_link_[key(from, to)].delivered;
}

FaultPlane::Counters FaultPlane::link_counters(EndpointId a,
                                               EndpointId b) const {
  auto it = per_link_.find(key(a, b));
  return it == per_link_.end() ? Counters{} : it->second;
}

void FaultPlane::export_metrics(obs::MetricsRegistry& registry,
                                const std::string& prefix) const {
  registry.counter(prefix + ".sent").set(totals_.sent);
  registry.counter(prefix + ".dropped").set(totals_.dropped);
  registry.counter(prefix + ".duplicated").set(totals_.duplicated);
  registry.counter(prefix + ".delivered").set(totals_.delivered);
  registry.counter(prefix + ".reordered").set(totals_.reordered);
}

}  // namespace miro::sim
