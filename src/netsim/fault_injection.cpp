#include "netsim/fault_injection.hpp"

namespace miro::sim {

FaultPlane::FaultPlane(std::uint64_t seed) : rng_(seed) {}

const LinkFaultProfile& FaultPlane::profile_of(EndpointId a,
                                               EndpointId b) const {
  auto it = profiles_.find(key(a, b));
  return it == profiles_.end() ? default_profile_ : it->second;
}

std::vector<Time> FaultPlane::plan(EndpointId from, EndpointId to) {
  const LinkFaultProfile& profile = profile_of(from, to);
  Counters& link = per_link_[key(from, to)];
  ++totals_.sent;
  ++link.sent;
  if (profile.drop > 0.0 && rng_.chance(profile.drop)) {
    ++totals_.dropped;
    ++link.dropped;
    return {};
  }
  std::vector<Time> copies;
  copies.push_back(profile.jitter_max == 0
                       ? 0
                       : rng_.next_below(profile.jitter_max + 1));
  if (profile.duplicate > 0.0 && rng_.chance(profile.duplicate)) {
    ++totals_.duplicated;
    ++link.duplicated;
    copies.push_back(profile.jitter_max == 0
                         ? 0
                         : rng_.next_below(profile.jitter_max + 1));
  }
  return copies;
}

void FaultPlane::note_delivered(EndpointId from, EndpointId to) {
  ++totals_.delivered;
  ++per_link_[key(from, to)].delivered;
}

FaultPlane::Counters FaultPlane::link_counters(EndpointId a,
                                               EndpointId b) const {
  auto it = per_link_.find(key(a, b));
  return it == per_link_.end() ? Counters{} : it->second;
}

}  // namespace miro::sim
