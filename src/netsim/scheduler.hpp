// Discrete-event scheduler for the control-plane simulations.
//
// MIRO's negotiation handshake (Figure 4.2) and the soft-state keep-alive
// protocol for tunnels (Section 4.3) are inherently asynchronous; they run
// here on simulated time. Events at the same timestamp fire in insertion
// order, which keeps every simulation deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "obs/trace.hpp"

namespace miro::sim {

/// Simulated time in abstract ticks (the protocol code treats one tick as a
/// millisecond, but nothing depends on the unit).
using Time = std::uint64_t;

class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Cancellation handle for a scheduled event. Destroying the token does
  /// NOT cancel; call cancel().
  class TimerToken {
   public:
    TimerToken() = default;
    /// Cancels the pending event; harmless if it already fired.
    void cancel() {
      if (alive_) *alive_ = false;
    }
    bool pending() const { return alive_ && *alive_; }

   private:
    friend class Scheduler;
    explicit TimerToken(std::shared_ptr<bool> alive)
        : alive_(std::move(alive)) {}
    std::shared_ptr<bool> alive_;
  };

  Time now() const { return now_; }

  /// Schedules `callback` at absolute time `t` (>= now).
  TimerToken at(Time t, Callback callback);

  /// Schedules `callback` `delay` ticks from now.
  TimerToken after(Time delay, Callback callback) {
    return at(now_ + delay, std::move(callback));
  }

  /// Runs the next event; returns false when the queue is empty.
  bool run_one();

  /// Runs events with timestamp <= `t` (and advances now() to `t`). Events
  /// scheduled after `t` — live or cancelled — are never touched.
  /// Returns the number of events executed.
  std::size_t run_until(Time t);

  /// Peeks the timestamp of the next live event, or nullopt when no live
  /// event is due at or before `limit`. Cancelled events at the head with
  /// timestamp <= `limit` are discarded (observing their scheduled times),
  /// exactly as run_until(limit) would; nothing fires and nothing past
  /// `limit` is touched. Lets a driver step a simulation event-time by
  /// event-time (e.g. the churn replayer's convergence-settle detection).
  std::optional<Time> next_event_within(Time limit);

  /// Drains the queue; throws once a live event beyond the `max_events`
  /// budget is due (exactly `max_events` callbacks execute first) as a
  /// runaway guard. Cancelled events never count against the budget.
  std::size_t run_all(std::size_t max_events = 1'000'000);

  std::size_t pending_events() const { return queue_.size(); }

  /// Attaches (or clears, with nullptr) a trace recorder observing timer
  /// schedule/fire/cancel events. A cancellation is observed when the dead
  /// event is popped, carrying its originally scheduled time. Null recorder
  /// costs one branch per operation and allocates nothing.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

 private:
  /// Discards cancelled events at the head of the queue (observing their
  /// scheduled times) until a live event is on top; returns false when the
  /// queue empties or (if `bounded`) the head lies beyond `limit`.
  bool next_live_event(bool bounded, Time limit);
  /// Pops and executes the head event, which must be live.
  void fire_top();

  struct Event {
    Time time;
    std::uint64_t sequence;
    Callback callback;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;  // FIFO within a timestamp
    }
  };

  Time now_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  obs::TraceRecorder* trace_ = nullptr;
};

}  // namespace miro::sim
