#include "netsim/scheduler.hpp"

#include <string>

#include "common/error.hpp"
#include "obs/profile.hpp"

namespace miro::sim {

Scheduler::TimerToken Scheduler::at(Time t, Callback callback) {
  require(t >= now_, "Scheduler::at: cannot schedule in the past");
  require(static_cast<bool>(callback), "Scheduler::at: empty callback");
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{t, next_sequence_++, std::move(callback), alive});
  if (trace_ != nullptr) {
    trace_->record({now_, obs::EventType::TimerScheduled, 0, 0, 0, 0,
                    static_cast<std::int64_t>(t), ""});
  }
  return TimerToken(std::move(alive));
}

bool Scheduler::next_live_event(bool bounded, Time limit) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    // Never pop past the bound: a cancelled event beyond `limit` must stay
    // queued, or skipping it would overshoot now_ and expose later live
    // events to run_until.
    if (bounded && top.time > limit) return false;
    if (*top.alive) return true;
    // Cancelled: discard, observing its originally scheduled time.
    now_ = top.time;
    if (trace_ != nullptr) {
      trace_->record({top.time, obs::EventType::TimerCancelled, 0, 0, 0, 0,
                      static_cast<std::int64_t>(top.sequence), ""});
    }
    queue_.pop();
  }
  return false;
}

void Scheduler::fire_top() {
  Event event = queue_.top();
  queue_.pop();
  now_ = event.time;
  *event.alive = false;  // mark fired
  if (trace_ != nullptr) {
    trace_->record({event.time, obs::EventType::TimerFired, 0, 0, 0, 0,
                    static_cast<std::int64_t>(event.sequence), ""});
  }
  event.callback();
}

bool Scheduler::run_one() {
  if (!next_live_event(false, 0)) return false;
  fire_top();
  return true;
}

std::optional<Time> Scheduler::next_event_within(Time limit) {
  if (!next_live_event(true, limit)) return std::nullopt;
  return queue_.top().time;
}

std::size_t Scheduler::run_until(Time t) {
  obs::ScopedSpan span(obs::profile(), "netsim/run_until", "netsim");
  std::size_t executed = 0;
  while (next_live_event(true, t)) {
    fire_top();
    ++executed;
  }
  if (now_ < t) now_ = t;
  return executed;
}

std::size_t Scheduler::run_all(std::size_t max_events) {
  obs::ScopedSpan span(obs::profile(), "netsim/run_all", "netsim");
  std::size_t executed = 0;
  while (next_live_event(false, 0)) {
    if (executed >= max_events) {
      // The budget is checked before firing, so a livelocked run executes
      // exactly max_events callbacks; the diagnostic tells it apart from
      // any other require() failure by reporting where it was stuck.
      throw Error("Scheduler::run_all: event budget exhausted (runaway "
                  "simulation?): now=" +
                  std::to_string(now_) +
                  ", pending_events=" + std::to_string(queue_.size()) +
                  ", max_events=" + std::to_string(max_events));
    }
    fire_top();
    ++executed;
  }
  return executed;
}

}  // namespace miro::sim
