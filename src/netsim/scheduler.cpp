#include "netsim/scheduler.hpp"

#include <string>

#include "common/error.hpp"
#include "obs/profile.hpp"

namespace miro::sim {

Scheduler::TimerToken Scheduler::at(Time t, Callback callback) {
  require(t >= now_, "Scheduler::at: cannot schedule in the past");
  require(static_cast<bool>(callback), "Scheduler::at: empty callback");
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{t, next_sequence_++, std::move(callback), alive});
  if (trace_ != nullptr) {
    trace_->record({now_, obs::EventType::TimerScheduled, 0, 0, 0, 0,
                    static_cast<std::int64_t>(t), ""});
  }
  return TimerToken(std::move(alive));
}

bool Scheduler::run_one() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    if (!*event.alive) {  // cancelled
      if (trace_ != nullptr) {
        trace_->record({event.time, obs::EventType::TimerCancelled, 0, 0, 0, 0,
                        static_cast<std::int64_t>(event.sequence), ""});
      }
      continue;
    }
    *event.alive = false;  // mark fired
    if (trace_ != nullptr) {
      trace_->record({event.time, obs::EventType::TimerFired, 0, 0, 0, 0,
                      static_cast<std::int64_t>(event.sequence), ""});
    }
    event.callback();
    return true;
  }
  return false;
}

std::size_t Scheduler::run_until(Time t) {
  obs::ScopedSpan span(obs::profile(), "netsim/run_until", "netsim");
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    if (run_one()) ++executed;
  }
  if (now_ < t) now_ = t;
  return executed;
}

std::size_t Scheduler::run_all(std::size_t max_events) {
  obs::ScopedSpan span(obs::profile(), "netsim/run_all", "netsim");
  std::size_t executed = 0;
  while (run_one()) {
    if (++executed > max_events) {
      // A livelocked chaos run must be tellable apart from any other
      // require() failure, so report where the simulation was stuck.
      throw Error("Scheduler::run_all: event budget exhausted (runaway "
                  "simulation?): now=" +
                  std::to_string(now_) +
                  ", pending_events=" + std::to_string(queue_.size()) +
                  ", max_events=" + std::to_string(max_events));
    }
  }
  return executed;
}

}  // namespace miro::sim
