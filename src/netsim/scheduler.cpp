#include "netsim/scheduler.hpp"

#include "common/error.hpp"

namespace miro::sim {

Scheduler::TimerToken Scheduler::at(Time t, Callback callback) {
  require(t >= now_, "Scheduler::at: cannot schedule in the past");
  require(static_cast<bool>(callback), "Scheduler::at: empty callback");
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{t, next_sequence_++, std::move(callback), alive});
  return TimerToken(std::move(alive));
}

bool Scheduler::run_one() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    if (!*event.alive) continue;  // cancelled
    *event.alive = false;         // mark fired
    event.callback();
    return true;
  }
  return false;
}

std::size_t Scheduler::run_until(Time t) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    if (run_one()) ++executed;
  }
  if (now_ < t) now_ = t;
  return executed;
}

std::size_t Scheduler::run_all(std::size_t max_events) {
  std::size_t executed = 0;
  while (run_one()) {
    require(++executed <= max_events,
            "Scheduler::run_all: event budget exhausted (runaway simulation?)");
  }
  return executed;
}

}  // namespace miro::sim
