// Deterministic churn replay over the sessioned BGP + tunnel plane.
//
// The replayer drives one SessionedBgpNetwork through a ChurnTrace on a
// private scheduler: trace events are applied from the outside at their
// scripted times (never pre-scheduled into the event queue, so the protocol's
// own timer arithmetic is undisturbed), the invariant checker runs at a
// configurable checkpoint cadence, and every burst of churn is timed from
// its first event to the first transit-quiet instant after it — the
// convergence samples the churn benches aggregate into distributions.
//
// Everything is pure simulation state driven by the trace and the seeds, so
// the same trace and config reproduce the identical result bit-for-bit.
#pragma once

#include <cstddef>
#include <vector>

#include "bgp/session_bgp.hpp"
#include "churn/churn_trace.hpp"
#include "churn/invariant_checker.hpp"
#include "core/tunnel_monitor.hpp"
#include "netsim/scheduler.hpp"

namespace miro::churn {

struct ReplayConfig {
  sim::Time link_delay = 10;
  /// MRAI / flap-damping knobs handed to the network (defaults: both off).
  bgp::ChurnDefenseConfig defense;
  /// Invariant checkpoint cadence in ticks; 0 restricts checkpoints to the
  /// final post-drain check.
  sim::Time checkpoint_interval = 200;
  /// Grace period a watched tunnel may outlive its underlying route.
  sim::Time tunnel_hold_down = 200;
  /// Tunnels to watch: wired to a TunnelMonitor fed by the route observer,
  /// and audited by the checker's hold-down invariant.
  std::vector<core::TunnelMonitor::WatchedTunnel> tunnels;
  /// Runaway guard over the whole replay (damping misconfiguration could
  /// otherwise oscillate forever).
  std::size_t max_scheduler_events = 20'000'000;
  /// Optional route-event provenance monitor. When set, the network emits
  /// one RibEventRecord per RIB-changing occurrence, and the replayer
  /// records every trace event as a root cause so reactions chain to it.
  /// Null (the default) costs nothing and leaves the replay byte-identical.
  obs::RibMonitor* ribmon = nullptr;
};

/// One churn burst timed to quiescence. A burst opens at the first trace
/// event after a quiet period and absorbs every further event applied before
/// the network next goes transit-quiet.
struct ConvergenceSample {
  std::size_t first_event = 0;  ///< trace index opening the burst
  std::size_t last_event = 0;   ///< last trace index folded into it
  sim::Time start = 0;          ///< sim time of the opening event
  sim::Time settled = 0;        ///< first transit-quiet instant after it
  /// UPDATE/WITHDRAW messages put on the wire during the burst.
  std::size_t messages = 0;

  sim::Time duration() const { return settled - start; }
};

struct ReplayResult {
  bgp::SessionedBgpNetwork::Stats bgp;
  std::vector<ConvergenceSample> convergence;
  std::vector<ChurnViolation> violations;
  CheckerStats checker;
  /// Ticks from start() to the first transit-quiet instant (before any
  /// trace event fired).
  sim::Time initial_convergence = 0;
  sim::Time final_time = 0;            ///< sim time when fully drained
  std::size_t scheduler_events = 0;    ///< events fired over the replay
  std::size_t tunnels_torn = 0;        ///< monitor teardowns (route changes)
  /// Deterministic end-state footprint of the speakers' RIB state (capacity
  /// walk at drain time) and of the checker's shadow copy — the numbers
  /// behind the churn benches' bytes_per_route rows.
  bgp::SessionedBgpNetwork::RibFootprint rib;
  std::uint64_t checker_bytes = 0;

  bool ok() const { return violations.empty(); }
};

/// Replays `trace` (validated against `graph` first) and returns the full
/// accounting. Throws miro::Error on an invalid trace or a blown event
/// budget.
ReplayResult replay_churn(const topo::AsGraph& graph, const ChurnTrace& trace,
                          const ReplayConfig& config = {});

}  // namespace miro::churn
