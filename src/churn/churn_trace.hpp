// Churn traces: the event taxonomy replayed against the sessioned BGP plane.
//
// A trace is a time-ordered script of control-plane disturbances — link
// flaps, session resets, prefix withdraw/re-announce cycles, and
// hijack-and-recover episodes (the failure modes Section 2.2.2's incremental
// protocol must absorb). Traces are plain data: generated from a seed (so a
// chaos run is reproducible bit-for-bit), or saved to / loaded from JSON so a
// failing run's exact script can be checked in and replayed forever.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "netsim/scheduler.hpp"
#include "topology/as_graph.hpp"

namespace miro::churn {

using topo::NodeId;

enum class ChurnEventKind : std::uint8_t {
  LinkDown,        ///< link (a, b) fails; sessions flush
  LinkUp,          ///< link (a, b) recovers; sessions resync
  SessionReset,    ///< link (a, b) bounces within one instant
  PrefixWithdraw,  ///< the origin stops announcing its prefix
  PrefixAnnounce,  ///< the origin re-announces
  HijackStart,     ///< AS `a` starts originating the prefix too
  HijackEnd,       ///< AS `a` withdraws its bogus origination
};

const char* to_string(ChurnEventKind kind);
/// Inverse of to_string; nullopt for an unknown name.
std::optional<ChurnEventKind> parse_churn_event_kind(std::string_view name);

struct ChurnEvent {
  sim::Time time = 0;
  ChurnEventKind kind = ChurnEventKind::LinkDown;
  /// Link end / hijacker; unused (kInvalidNode) for prefix events.
  NodeId a = topo::kInvalidNode;
  /// The other link end; link events only.
  NodeId b = topo::kInvalidNode;

  friend bool operator==(const ChurnEvent&, const ChurnEvent&) = default;
};

struct ChurnTrace {
  NodeId destination = 0;
  /// Generator seed, kept for provenance; 0 for hand-written traces.
  std::uint64_t seed = 0;
  std::vector<ChurnEvent> events;

  /// Time of the last event; 0 for an empty trace.
  sim::Time end_time() const {
    return events.empty() ? 0 : events.back().time;
  }

  JsonValue to_json() const;
  /// Parses the to_json() shape; throws miro::Error on malformed documents.
  static ChurnTrace from_json(const JsonValue& value);
  std::string dump() const { return to_json().dump(); }
  static ChurnTrace parse(std::string_view text) {
    return from_json(JsonValue::parse(text));
  }

  /// File round-trip; both throw miro::Error naming the path on I/O errors.
  void save(const std::string& path) const;
  static ChurnTrace load(const std::string& path);

  /// Structural sanity against a topology: events time-ordered, ids in
  /// range, link events name real edges, and the implied state machine is
  /// consistent (no downing a downed link, no double hijack, ...). Throws
  /// miro::Error naming the first offending event index.
  void validate(const topo::AsGraph& graph) const;
};

/// Knobs for the seeded generator. The defaults produce a mixed workload
/// dominated by link flaps, the empirically dominant churn source.
struct ChurnTraceConfig {
  sim::Time duration = 20000;       ///< all events land in [0, duration)
  std::size_t episodes = 40;        ///< disturbance episodes to attempt
  sim::Time min_hold = 50;          ///< shortest down/withdrawn/hijack spell
  sim::Time max_hold = 500;         ///< longest spell
  double link_flap_weight = 6.0;    ///< episode-kind draw weights
  double session_reset_weight = 2.0;
  double prefix_flap_weight = 1.0;
  double hijack_weight = 1.0;
  /// A few links are designated repeat offenders and draw a biased share of
  /// the flaps — the regime flap damping exists for.
  std::size_t flappy_links = 2;
  std::uint64_t seed = 42;
};

/// Generates a trace from the seed. Episodes that cannot be placed without
/// violating the state machine (e.g. every link busy) are skipped, so the
/// trace may hold fewer episodes than asked. The generated trace always ends
/// clean — every link restored, prefix announced, no hijack active — so a
/// replay can compare the final converged state against StableRouteSolver.
ChurnTrace generate_churn_trace(const topo::AsGraph& graph,
                                NodeId destination,
                                const ChurnTraceConfig& config);

/// A pathological single-link flapper: `flaps` down/up cycles of link (a, b),
/// one every `period` ticks (down at k*period, up halfway through). The
/// workload the MRAI + damping defenses must pay for themselves on.
ChurnTrace make_persistent_flap_trace(const topo::AsGraph& graph,
                                      NodeId destination, NodeId a, NodeId b,
                                      std::size_t flaps, sim::Time period);

}  // namespace miro::churn
