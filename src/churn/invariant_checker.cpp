#include "churn/invariant_checker.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "bgp/route.hpp"
#include "bgp/route_solver.hpp"
#include "common/memtrack.hpp"

namespace miro::churn {

namespace {

std::uint64_t pair_key(std::uint32_t hi, std::uint32_t lo) {
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

std::string path_string(const std::vector<NodeId>& path) {
  std::ostringstream out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) out << '-';
    out << path[i];
  }
  return out.str();
}

/// The surviving topology: the reference graph minus the failed links, with
/// identical dense node ids (same add_as order) so paths compare directly.
topo::AsGraph surviving_subgraph(
    const topo::AsGraph& graph,
    const std::vector<std::pair<NodeId, NodeId>>& failed) {
  topo::AsGraph sub;
  for (NodeId n = 0; n < graph.node_count(); ++n) sub.add_as(graph.as_number(n));
  std::set<std::uint64_t> dead;
  for (const auto& [a, b] : failed) dead.insert(pair_key(std::min(a, b), std::max(a, b)));
  for (NodeId n = 0; n < graph.node_count(); ++n) {
    for (const topo::Neighbor& nb : graph.neighbors(n)) {
      if (nb.node < n) continue;  // each undirected link once
      if (dead.count(pair_key(n, nb.node)) != 0) continue;
      switch (nb.rel) {  // nb.rel = what nb is *to n*
        case topo::Relationship::Customer:
          sub.add_customer_provider(/*provider=*/n, /*customer=*/nb.node);
          break;
        case topo::Relationship::Provider:
          sub.add_customer_provider(/*provider=*/nb.node, /*customer=*/n);
          break;
        case topo::Relationship::Peer:
          sub.add_peer(n, nb.node);
          break;
        case topo::Relationship::Sibling:
          sub.add_sibling(n, nb.node);
          break;
      }
    }
  }
  return sub;
}

}  // namespace

InvariantChecker::InvariantChecker(bgp::SessionedBgpNetwork& network,
                                   sim::Time tunnel_hold_down,
                                   const core::TunnelMonitor* monitor)
    : network_(&network),
      monitor_(monitor),
      hold_down_(tunnel_hold_down),
      shadow_(network.graph().node_count()) {
  network_->set_message_observer(
      [this](NodeId from, NodeId to, const std::vector<NodeId>& path) {
        if (path.empty()) {
          shadow_[to].erase(from);
        } else {
          shadow_[to][from] = path;
        }
      });
}

void InvariantChecker::on_session_flush(NodeId a, NodeId b) {
  shadow_[a].erase(b);
  shadow_[b].erase(a);
}

void InvariantChecker::add(const char* property, sim::Time now,
                           std::string detail) {
  if (violations_.size() >= kMaxViolations) {
    ++stats_.violations_dropped;
    return;
  }
  violations_.push_back({property, now, last_event_, std::move(detail)});
}

void InvariantChecker::check(sim::Time now) {
  ++stats_.checkpoints;
  check_shadow(now);
  check_failed_link_ribs(now);
  check_paths(now);
  if (monitor_ != nullptr) check_tunnels(now);
  if (!network_->transit_quiet()) return;
  ++stats_.quiet_checkpoints;
  check_loops(now);
  check_export_consistency(now);
  const bool nominal = network_->prefix_announced() &&
                       !network_->hijack_active() &&
                       network_->active_suppressions() == 0;
  if (nominal) {
    ++stats_.solver_comparisons;
    check_solver(now);
  }
}

void InvariantChecker::final_check(sim::Time now) {
  if (!network_->transit_quiet()) {
    add("replay-quiescence", now,
        "replay drained but network is not transit-quiet (" +
            std::to_string(network_->messages_in_flight()) + " in flight, " +
            std::to_string(network_->mrai_parked()) + " parked)");
  }
  check(now);
}

void InvariantChecker::check_shadow(sim::Time now) {
  const std::size_t count = network_->graph().node_count();
  const bgp::PathTable& paths = network_->paths();
  std::vector<NodeId> actual_path;  // scratch for materialized entries
  for (NodeId n = 0; n < count; ++n) {
    // The live RIB holds interned ids; the shadow (rebuilt from observed
    // wire messages, deliberately not sharing the network's table) holds
    // vectors, so entries are compared materialized.
    const auto& actual = network_->adj_in_of(n);
    const auto& shadow = shadow_[n];
    bool diverged = actual.size() != shadow.size();
    NodeId divergent = topo::kInvalidNode;
    for (const auto& [from, path_id] : actual) {
      const auto it = shadow.find(from);
      paths.materialize_into(path_id, actual_path);
      if (it == shadow.end() || it->second != actual_path) {
        diverged = true;
        divergent = from;
        break;
      }
    }
    if (!diverged) continue;
    // Name one divergent neighbor for the diagnostic.
    std::string detail = "node " + std::to_string(n) + ": Adj-RIB-In (" +
                         std::to_string(actual.size()) +
                         " entries) diverges from delivered messages (" +
                         std::to_string(shadow.size()) + ")";
    if (divergent != topo::kInvalidNode)
      detail += "; first divergence: neighbor " + std::to_string(divergent);
    add("shadow-rib", now, std::move(detail));
  }
}

void InvariantChecker::check_failed_link_ribs(sim::Time now) {
  for (const auto& [a, b] : network_->failed_links()) {
    for (const auto& [self, other] : {std::pair{a, b}, std::pair{b, a}}) {
      if (network_->adj_in_of(self).count(other) != 0) {
        add("failed-link-rib", now,
            "node " + std::to_string(self) +
                " keeps an Adj-RIB-In entry from " + std::to_string(other) +
                " across the failed link");
      }
      if (network_->advertised_to_of(self).count(other) != 0) {
        add("failed-link-rib", now,
            "node " + std::to_string(self) +
                " still marks its route as advertised to " +
                std::to_string(other) + " across the failed link");
      }
    }
  }
}

void InvariantChecker::check_paths(sim::Time now) {
  const topo::AsGraph& graph = network_->graph();
  for (NodeId n = 0; n < graph.node_count(); ++n) {
    if (!network_->has_route(n)) continue;
    const std::vector<NodeId> path = network_->path_of(n);
    if (path.empty() || path.front() != n) {
      add("path-wellformed", now,
          "node " + std::to_string(n) + ": best path does not start at the "
          "node: " + path_string(path));
      continue;
    }
    std::set<NodeId> seen;
    bool bad = false;
    for (std::size_t i = 0; i < path.size() && !bad; ++i) {
      if (path[i] >= graph.node_count() || !seen.insert(path[i]).second) {
        bad = true;
      } else if (i + 1 < path.size() && !graph.has_edge(path[i], path[i + 1])) {
        bad = true;
      }
    }
    if (bad) {
      add("path-wellformed", now,
          "node " + std::to_string(n) + ": best path repeats an AS or walks "
          "a non-edge: " + path_string(path));
    }
  }
}

void InvariantChecker::check_tunnels(sim::Time now) {
  for (const auto& tunnel : monitor_->watched()) {
    if (tunnel.destination != network_->destination()) continue;
    // The responder *is* the destination: nothing downstream to break.
    if (tunnel.bound_path.size() < 2) continue;
    const NodeId hop = tunnel.bound_path[1];
    // Mirror TunnelMonitor::on_downstream_change's teardown predicate
    // against the live routing state.
    bool dead = !network_->has_route(hop);
    if (!dead) {
      const std::vector<NodeId> path = network_->path_of(hop);
      if (tunnel.must_avoid &&
          std::find(path.begin(), path.end(), *tunnel.must_avoid) !=
              path.end()) {
        dead = true;
      } else if (tunnel.strict_binding) {
        const std::vector<NodeId> expected(tunnel.bound_path.begin() + 1,
                                           tunnel.bound_path.end());
        dead = path != expected;
      }
    }
    const std::uint64_t key = pair_key(tunnel.responder, tunnel.id);
    if (!dead) {
      tunnel_bad_since_.erase(key);
      tunnel_reported_.erase(key);
      continue;
    }
    const auto [it, fresh] = tunnel_bad_since_.emplace(key, now);
    if (now - it->second <= hold_down_) continue;
    if (tunnel_reported_.emplace(key, true).second) {
      add("tunnel-hold-down", now,
          "tunnel " + std::to_string(tunnel.id) + " (responder " +
              std::to_string(tunnel.responder) +
              ") outlived its underlying route by more than " +
              std::to_string(hold_down_) + " ticks");
    }
  }
}

void InvariantChecker::check_loops(sim::Time now) {
  const std::size_t count = network_->graph().node_count();
  for (NodeId n = 0; n < count; ++n) {
    if (!network_->has_route(n)) continue;
    NodeId cur = n;
    std::size_t steps = 0;
    std::vector<NodeId> walk{n};
    for (;;) {
      const std::vector<NodeId> path = network_->path_of(cur);
      if (path.size() <= 1) break;  // reached an origin
      cur = path[1];
      walk.push_back(cur);
      if (!network_->has_route(cur)) {
        add("forwarding-loop", now,
            "walk from " + std::to_string(n) + " reaches " +
                std::to_string(cur) + " which has no route: " +
                path_string(walk));
        break;
      }
      if (++steps > count) {
        add("forwarding-loop", now,
            "next-hop walk from " + std::to_string(n) +
                " does not terminate: " + path_string(walk));
        break;
      }
    }
  }
}

void InvariantChecker::check_export_consistency(sim::Time now) {
  const topo::AsGraph& graph = network_->graph();
  for (NodeId m = 0; m < graph.node_count(); ++m) {
    const bool has = network_->has_route(m);
    for (const topo::Neighbor& nb : graph.neighbors(m)) {
      if (!network_->link_is_up(m, nb.node)) continue;
      const bool expected =
          has && bgp::conventional_export_allows(
                     network_->best(m).route_class, nb.rel);
      const auto& rib = network_->adj_in_of(nb.node);
      const auto it = rib.find(m);
      if (expected) {
        if (it == rib.end()) {
          add("rib-export-consistency", now,
              "node " + std::to_string(nb.node) + " misses the route " +
                  std::to_string(m) + " currently exports");
        } else if (network_->paths().materialize(it->second) !=
                   network_->best(m).path) {
          add("rib-export-consistency", now,
              "node " + std::to_string(nb.node) + " holds a stale path from " +
                  std::to_string(m) + ": has " +
                  path_string(network_->paths().materialize(it->second)) +
                  ", neighbor's best is " +
                  path_string(network_->best(m).path));
        }
        if (network_->advertised_to_of(m).count(nb.node) == 0) {
          add("rib-export-consistency", now,
              "node " + std::to_string(m) + " exports to " +
                  std::to_string(nb.node) +
                  " but does not track the advertisement");
        }
      } else if (it != rib.end()) {
        add("rib-export-consistency", now,
            "node " + std::to_string(nb.node) +
                " holds a route neighbor " + std::to_string(m) +
                " no longer exports: " +
                path_string(network_->paths().materialize(it->second)));
      }
    }
  }
}

void InvariantChecker::check_solver(sim::Time now) {
  const topo::AsGraph& graph = network_->graph();
  const auto failed = network_->failed_links();
  // Rebuilding the graph is O(E); only bother when links are actually down.
  const topo::AsGraph sub =
      failed.empty() ? topo::AsGraph{} : surviving_subgraph(graph, failed);
  const topo::AsGraph& effective = failed.empty() ? graph : sub;
  const bgp::RoutingTree tree =
      bgp::StableRouteSolver(effective).solve(network_->destination());
  for (NodeId n = 0; n < graph.node_count(); ++n) {
    const bool reachable = tree.reachable(n);
    if (reachable != network_->has_route(n)) {
      add("solver-agreement", now,
          "node " + std::to_string(n) + (reachable
              ? " has no route but the stable solution reaches it"
              : " has a route but the stable solution does not reach it"));
      continue;
    }
    if (!reachable) continue;
    const std::vector<NodeId> expected = tree.path_of(n);
    const std::vector<NodeId> actual = network_->path_of(n);
    if (expected != actual) {
      add("solver-agreement", now,
          "node " + std::to_string(n) + ": converged to " +
              path_string(actual) + ", stable solution is " +
              path_string(expected));
    }
  }
}

std::uint64_t InvariantChecker::memory_bytes() const {
  std::uint64_t bytes = vector_bytes(shadow_);
  for (const auto& rib : shadow_) {
    bytes += hash_map_bytes(rib);
    for (const auto& [from, path] : rib) bytes += vector_bytes(path);
  }
  bytes += hash_map_bytes(tunnel_bad_since_);
  bytes += hash_map_bytes(tunnel_reported_);
  return bytes;
}

}  // namespace miro::churn
