#include "churn/churn_trace.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace miro::churn {

namespace {

/// Order-independent pair key, matching the session layer's convention.
std::uint64_t link_key(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

bool is_link_event(ChurnEventKind kind) {
  return kind == ChurnEventKind::LinkDown || kind == ChurnEventKind::LinkUp ||
         kind == ChurnEventKind::SessionReset;
}

NodeId node_from_json(const JsonValue& event, const char* field,
                      std::size_t index) {
  const JsonValue* value = event.get(field);
  if (value == nullptr) {
    throw Error("ChurnTrace: event " + std::to_string(index) + " misses '" +
                field + "'");
  }
  const double number = value->as_number();
  if (number < 0 || number != static_cast<NodeId>(number)) {
    throw Error("ChurnTrace: event " + std::to_string(index) +
                ": bad node id in '" + field + "'");
  }
  return static_cast<NodeId>(number);
}

}  // namespace

const char* to_string(ChurnEventKind kind) {
  switch (kind) {
    case ChurnEventKind::LinkDown: return "link_down";
    case ChurnEventKind::LinkUp: return "link_up";
    case ChurnEventKind::SessionReset: return "session_reset";
    case ChurnEventKind::PrefixWithdraw: return "prefix_withdraw";
    case ChurnEventKind::PrefixAnnounce: return "prefix_announce";
    case ChurnEventKind::HijackStart: return "hijack_start";
    case ChurnEventKind::HijackEnd: return "hijack_end";
  }
  return "unknown";
}

std::optional<ChurnEventKind> parse_churn_event_kind(std::string_view name) {
  for (const ChurnEventKind kind :
       {ChurnEventKind::LinkDown, ChurnEventKind::LinkUp,
        ChurnEventKind::SessionReset, ChurnEventKind::PrefixWithdraw,
        ChurnEventKind::PrefixAnnounce, ChurnEventKind::HijackStart,
        ChurnEventKind::HijackEnd}) {
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

JsonValue ChurnTrace::to_json() const {
  JsonValue doc = JsonValue::make_object();
  doc.set("schema", JsonValue::make_number(1));
  doc.set("destination", JsonValue::make_number(destination));
  doc.set("seed", JsonValue::make_number(static_cast<double>(seed)));
  JsonValue list = JsonValue::make_array();
  for (const ChurnEvent& event : events) {
    JsonValue entry = JsonValue::make_object();
    entry.set("t", JsonValue::make_number(static_cast<double>(event.time)));
    entry.set("kind", JsonValue::make_string(to_string(event.kind)));
    if (event.kind == ChurnEventKind::HijackStart ||
        event.kind == ChurnEventKind::HijackEnd) {
      entry.set("a", JsonValue::make_number(event.a));
    } else if (is_link_event(event.kind)) {
      entry.set("a", JsonValue::make_number(event.a));
      entry.set("b", JsonValue::make_number(event.b));
    }
    list.push_back(std::move(entry));
  }
  doc.set("events", std::move(list));
  return doc;
}

ChurnTrace ChurnTrace::from_json(const JsonValue& value) {
  if (!value.is_object()) throw Error("ChurnTrace: document is not an object");
  if (value.contains("schema") && value.at("schema").as_number() != 1)
    throw Error("ChurnTrace: unsupported schema version");
  ChurnTrace trace;
  trace.destination =
      static_cast<NodeId>(value.at("destination").as_number());
  if (value.contains("seed"))
    trace.seed = static_cast<std::uint64_t>(value.at("seed").as_number());
  const JsonValue& list = value.at("events");
  if (!list.is_array()) throw Error("ChurnTrace: 'events' is not an array");
  trace.events.reserve(list.size());
  for (std::size_t i = 0; i < list.size(); ++i) {
    const JsonValue& entry = list.at(i);
    ChurnEvent event;
    const double t = entry.at("t").as_number();
    if (t < 0) {
      throw Error("ChurnTrace: event " + std::to_string(i) +
                  ": negative time");
    }
    event.time = static_cast<sim::Time>(t);
    const auto kind = parse_churn_event_kind(entry.at("kind").as_string());
    if (!kind) {
      throw Error("ChurnTrace: event " + std::to_string(i) +
                  ": unknown kind '" + entry.at("kind").as_string() + "'");
    }
    event.kind = *kind;
    if (is_link_event(event.kind)) {
      event.a = node_from_json(entry, "a", i);
      event.b = node_from_json(entry, "b", i);
    } else if (event.kind == ChurnEventKind::HijackStart ||
               event.kind == ChurnEventKind::HijackEnd) {
      event.a = node_from_json(entry, "a", i);
    }
    trace.events.push_back(event);
  }
  return trace;
}

void ChurnTrace::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("ChurnTrace::save: cannot open " + path);
  out << dump() << '\n';
  if (!out) throw Error("ChurnTrace::save: write failed for " + path);
}

ChurnTrace ChurnTrace::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("ChurnTrace::load: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

void ChurnTrace::validate(const topo::AsGraph& graph) const {
  require(destination < graph.node_count(),
          "ChurnTrace: destination out of range");
  std::set<std::uint64_t> down;       // currently failed links
  std::set<NodeId> hijackers;         // currently active hijackers
  bool announced = true;
  sim::Time previous = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ChurnEvent& event = events[i];
    const auto fail = [&](const char* what) {
      throw Error("ChurnTrace: event " + std::to_string(i) + " (" +
                  to_string(event.kind) + " at t=" +
                  std::to_string(event.time) + "): " + what);
    };
    if (event.time < previous) fail("out of time order");
    previous = event.time;
    if (is_link_event(event.kind)) {
      if (event.a >= graph.node_count() || event.b >= graph.node_count())
        fail("link end out of range");
      if (!graph.has_edge(event.a, event.b)) fail("no such link");
      const std::uint64_t key = link_key(event.a, event.b);
      switch (event.kind) {
        case ChurnEventKind::LinkDown:
          if (!down.insert(key).second) fail("link already down");
          break;
        case ChurnEventKind::LinkUp:
          if (down.erase(key) == 0) fail("link is not down");
          break;
        default:  // SessionReset
          if (down.count(key) != 0) fail("cannot reset a failed link");
          break;
      }
    } else if (event.kind == ChurnEventKind::PrefixWithdraw) {
      if (!announced) fail("prefix already withdrawn");
      announced = false;
    } else if (event.kind == ChurnEventKind::PrefixAnnounce) {
      if (announced) fail("prefix already announced");
      announced = true;
    } else if (event.kind == ChurnEventKind::HijackStart) {
      if (event.a >= graph.node_count()) fail("hijacker out of range");
      if (event.a == destination) fail("destination cannot hijack itself");
      if (!hijackers.insert(event.a).second) fail("hijack already active");
    } else {  // HijackEnd
      if (hijackers.erase(event.a) == 0) fail("no such active hijack");
    }
  }
}

ChurnTrace generate_churn_trace(const topo::AsGraph& graph,
                                NodeId destination,
                                const ChurnTraceConfig& config) {
  require(destination < graph.node_count(),
          "generate_churn_trace: destination out of range");
  require(config.min_hold >= 1 && config.min_hold <= config.max_hold,
          "generate_churn_trace: need 1 <= min_hold <= max_hold");
  require(config.duration > config.max_hold,
          "generate_churn_trace: duration must exceed max_hold");

  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId n = 0; n < graph.node_count(); ++n) {
    for (const topo::Neighbor& nb : graph.neighbors(n)) {
      if (nb.node > n) edges.emplace_back(n, nb.node);
    }
  }

  ChurnTrace trace;
  trace.destination = destination;
  trace.seed = config.seed;
  if (edges.empty()) return trace;

  Rng rng(config.seed);

  // Designated repeat offenders soak up a biased share of the link flaps.
  std::vector<std::size_t> flappy;
  while (flappy.size() < std::min(config.flappy_links, edges.size())) {
    const auto pick = static_cast<std::size_t>(rng.next_below(edges.size()));
    if (std::find(flappy.begin(), flappy.end(), pick) == flappy.end())
      flappy.push_back(pick);
  }

  // Per-resource "busy until": the first tick at which the resource is
  // guaranteed back in its nominal state, so overlapping episodes on the
  // same link/prefix/hijack slot are never emitted.
  std::unordered_map<std::size_t, sim::Time> link_busy;
  sim::Time prefix_busy = 0;
  sim::Time hijack_busy = 0;

  const double total_weight = config.link_flap_weight +
                              config.session_reset_weight +
                              config.prefix_flap_weight + config.hijack_weight;
  require(total_weight > 0, "generate_churn_trace: all weights zero");

  for (std::size_t episode = 0; episode < config.episodes; ++episode) {
    const double dice = rng.uniform() * total_weight;
    const sim::Time hold = static_cast<sim::Time>(rng.uniform_int(
        static_cast<std::int64_t>(config.min_hold),
        static_cast<std::int64_t>(config.max_hold)));
    const sim::Time latest_start = config.duration - config.max_hold - 1;
    const auto draw_start = [&] {
      return static_cast<sim::Time>(
          rng.uniform_int(0, static_cast<std::int64_t>(latest_start)));
    };
    constexpr int kAttempts = 8;  // then skip the episode
    if (dice < config.link_flap_weight) {
      for (int attempt = 0; attempt < kAttempts; ++attempt) {
        const std::size_t edge =
            (!flappy.empty() && rng.chance(0.6))
                ? flappy[rng.next_below(flappy.size())]
                : static_cast<std::size_t>(rng.next_below(edges.size()));
        const sim::Time start = draw_start();
        const auto busy = link_busy.find(edge);
        if (busy != link_busy.end() && busy->second > start) continue;
        link_busy[edge] = start + hold + 1;
        trace.events.push_back({start, ChurnEventKind::LinkDown,
                                edges[edge].first, edges[edge].second});
        trace.events.push_back({start + hold, ChurnEventKind::LinkUp,
                                edges[edge].first, edges[edge].second});
        break;
      }
    } else if (dice < config.link_flap_weight + config.session_reset_weight) {
      for (int attempt = 0; attempt < kAttempts; ++attempt) {
        const auto edge =
            static_cast<std::size_t>(rng.next_below(edges.size()));
        const sim::Time start = draw_start();
        const auto busy = link_busy.find(edge);
        if (busy != link_busy.end() && busy->second > start) continue;
        link_busy[edge] = std::max(link_busy[edge], start + 1);
        trace.events.push_back({start, ChurnEventKind::SessionReset,
                                edges[edge].first, edges[edge].second});
        break;
      }
    } else if (dice < config.link_flap_weight + config.session_reset_weight +
                          config.prefix_flap_weight) {
      for (int attempt = 0; attempt < kAttempts; ++attempt) {
        const sim::Time start = draw_start();
        if (prefix_busy > start) continue;
        prefix_busy = start + hold + 1;
        trace.events.push_back({start, ChurnEventKind::PrefixWithdraw});
        trace.events.push_back({start + hold, ChurnEventKind::PrefixAnnounce});
        break;
      }
    } else {
      if (graph.node_count() < 2) continue;
      for (int attempt = 0; attempt < kAttempts; ++attempt) {
        auto hijacker =
            static_cast<NodeId>(rng.next_below(graph.node_count()));
        if (hijacker == destination) continue;
        const sim::Time start = draw_start();
        if (hijack_busy > start) continue;
        hijack_busy = start + hold + 1;
        trace.events.push_back(
            {start, ChurnEventKind::HijackStart, hijacker});
        trace.events.push_back({start + hold, ChurnEventKind::HijackEnd,
                                hijacker});
        break;
      }
    }
  }

  // Stable, so same-time events keep their generation order (and the replay
  // is therefore identical across runs and platforms).
  std::stable_sort(trace.events.begin(), trace.events.end(),
                   [](const ChurnEvent& x, const ChurnEvent& y) {
                     return x.time < y.time;
                   });
  return trace;
}

ChurnTrace make_persistent_flap_trace(const topo::AsGraph& graph,
                                      NodeId destination, NodeId a, NodeId b,
                                      std::size_t flaps, sim::Time period) {
  require(graph.has_edge(a, b), "make_persistent_flap_trace: no such link");
  require(destination < graph.node_count(),
          "make_persistent_flap_trace: destination out of range");
  require(period >= 2, "make_persistent_flap_trace: period must be >= 2");
  ChurnTrace trace;
  trace.destination = destination;
  for (std::size_t i = 0; i < flaps; ++i) {
    const sim::Time start = static_cast<sim::Time>(i) * period;
    trace.events.push_back({start, ChurnEventKind::LinkDown, a, b});
    trace.events.push_back({start + period / 2, ChurnEventKind::LinkUp, a, b});
  }
  return trace;
}

}  // namespace miro::churn
