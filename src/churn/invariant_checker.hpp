// Online safety-invariant checking during churn replay.
//
// A path-vector network under churn is transiently inconsistent by design —
// stale Adj-RIB-In entries with corrective messages still in flight can form
// momentary forwarding loops, which is legitimate protocol behaviour. The
// checker therefore splits its properties in two tiers:
//
//   Weak (hold at every instant):
//     - shadow-rib: each speaker's Adj-RIB-In equals the shadow copy rebuilt
//       from the actually-delivered messages (nothing invented, nothing
//       lost) — fed by SessionedBgpNetwork's MessageObserver;
//     - failed-link-rib: no Adj-RIB-In entry survives over a failed link;
//     - path-wellformed: every best path starts at its owner, walks real
//       edges, and repeats no AS;
//     - tunnel-hold-down: no watched tunnel outlives the loss of its
//       underlying route past the configured hold-down.
//
//   Strong (hold whenever the network is transit-quiet — nothing in flight,
//   nothing parked behind MRAI):
//     - forwarding-loop: following best next-hops from any AS terminates;
//     - rib-export-consistency: each Adj-RIB-In entry equals what the
//       neighbor's export policy says it should currently advertise;
//     - solver-agreement: with nominal origins and no active damping
//       suppression, every best path equals StableRouteSolver's unique
//       stable answer on the surviving subgraph.
//
// Violations carry the sim time and the index of the last applied trace
// event — the witness that makes a failing seed debuggable.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/session_bgp.hpp"
#include "core/tunnel_monitor.hpp"
#include "netsim/scheduler.hpp"

namespace miro::churn {

using topo::NodeId;

struct ChurnViolation {
  std::string property;  ///< invariant name, e.g. "forwarding-loop"
  sim::Time time = 0;    ///< sim time of the failing checkpoint
  /// Index of the last trace event applied before the violation (the
  /// witness); kNoEvent when the trace had not started yet.
  std::size_t event_index = static_cast<std::size_t>(-1);
  std::string detail;    ///< human-readable specifics
};

struct CheckerStats {
  std::size_t checkpoints = 0;         ///< check() calls
  std::size_t quiet_checkpoints = 0;   ///< ... that ran the strong tier
  std::size_t solver_comparisons = 0;  ///< ... that also compared the solver
  std::size_t violations_dropped = 0;  ///< beyond kMaxViolations
};

class InvariantChecker {
 public:
  static constexpr std::size_t kNoEvent = static_cast<std::size_t>(-1);
  /// Hard cap on recorded violations — a genuinely broken run would
  /// otherwise flood every checkpoint; the drop count keeps the tally.
  static constexpr std::size_t kMaxViolations = 64;

  /// Installs itself as `network`'s message observer (claiming that slot)
  /// to maintain the shadow Adj-RIB-In. `monitor`, when given, must outlive
  /// the checker; its watched tunnels are audited against `hold_down`.
  explicit InvariantChecker(bgp::SessionedBgpNetwork& network,
                            sim::Time tunnel_hold_down = 0,
                            const core::TunnelMonitor* monitor = nullptr);

  /// The replayer is about to apply trace event `index` — recorded as the
  /// witness on subsequent violations.
  void note_event(std::size_t index) { last_event_ = index; }

  /// A session between a and b flushed (link failure or reset): the shadow
  /// RIBs forget what either end learned from the other, mirroring the
  /// speakers.
  void on_session_flush(NodeId a, NodeId b);

  /// Runs one checkpoint at sim time `now`: always the weak tier, plus the
  /// strong tier when the network is transit-quiet.
  void check(sim::Time now);

  /// End-of-replay checkpoint: additionally requires the network to be
  /// transit-quiet (a drained replay that is not quiescent is itself a
  /// violation).
  void final_check(sim::Time now);

  const std::vector<ChurnViolation>& violations() const { return violations_; }
  const CheckerStats& stats() const { return stats_; }

  /// Byte footprint of the shadow Adj-RIB-In and tunnel bookkeeping
  /// (capacity walk, deterministic) — the checker mirrors every delivered
  /// path, so replays pay for their RIBs twice; this makes the second copy
  /// visible in the memory account table.
  std::uint64_t memory_bytes() const;

 private:
  void add(const char* property, sim::Time now, std::string detail);
  void check_shadow(sim::Time now);
  void check_failed_link_ribs(sim::Time now);
  void check_paths(sim::Time now);
  void check_tunnels(sim::Time now);
  void check_loops(sim::Time now);
  void check_export_consistency(sim::Time now);
  void check_solver(sim::Time now);

  bgp::SessionedBgpNetwork* network_;
  const core::TunnelMonitor* monitor_;
  sim::Time hold_down_;
  /// Shadow Adj-RIB-In per node: neighbor -> path, rebuilt purely from
  /// delivered messages and session flushes.
  std::vector<std::unordered_map<NodeId, std::vector<NodeId>>> shadow_;
  /// (responder << 32 | tunnel id) -> when its underlying route first went
  /// bad; erased on recovery.
  std::unordered_map<std::uint64_t, sim::Time> tunnel_bad_since_;
  /// Tunnels already reported, so a dead tunnel fires once, not per tick.
  std::unordered_map<std::uint64_t, bool> tunnel_reported_;
  std::vector<ChurnViolation> violations_;
  CheckerStats stats_;
  std::size_t last_event_ = kNoEvent;
};

}  // namespace miro::churn
