#include "churn/replayer.hpp"

#include <limits>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "obs/memstats.hpp"

namespace miro::churn {

namespace {

void apply_event(bgp::SessionedBgpNetwork& network, InvariantChecker& checker,
                 const ChurnEvent& event) {
  switch (event.kind) {
    case ChurnEventKind::LinkDown:
      network.fail_link(event.a, event.b);
      checker.on_session_flush(event.a, event.b);
      break;
    case ChurnEventKind::LinkUp:
      network.restore_link(event.a, event.b);
      break;
    case ChurnEventKind::SessionReset:
      network.fail_link(event.a, event.b);
      checker.on_session_flush(event.a, event.b);
      network.restore_link(event.a, event.b);
      break;
    case ChurnEventKind::PrefixWithdraw:
      network.withdraw_prefix();
      break;
    case ChurnEventKind::PrefixAnnounce:
      network.announce_prefix();
      break;
    case ChurnEventKind::HijackStart:
      network.start_hijack(event.a);
      break;
    case ChurnEventKind::HijackEnd:
      network.end_hijack(event.a);
      break;
  }
}

}  // namespace

ReplayResult replay_churn(const topo::AsGraph& graph, const ChurnTrace& trace,
                          const ReplayConfig& config) {
  trace.validate(graph);

  sim::Scheduler scheduler;
  bgp::SessionedBgpNetwork network(graph, trace.destination, scheduler,
                                   config.link_delay, config.defense);
  network.set_rib_monitor(config.ribmon);
  ReplayResult result;

  core::TunnelMonitor monitor;
  for (const auto& tunnel : config.tunnels) monitor.watch(tunnel);
  if (!config.tunnels.empty()) {
    network.set_observer([&](NodeId node,
                             const std::optional<bgp::Route>& best) {
      std::optional<std::vector<NodeId>> path;
      if (best) path = best->path;
      result.tunnels_torn +=
          monitor.on_downstream_change(node, trace.destination, path).size();
    });
  }
  InvariantChecker checker(network, config.tunnel_hold_down,
                           config.tunnels.empty() ? nullptr : &monitor);

  constexpr sim::Time kNever = std::numeric_limits<sim::Time>::max();
  sim::Time next_checkpoint =
      config.checkpoint_interval == 0 ? kNever : config.checkpoint_interval;

  // Burst accounting. The run opens with the initial-convergence burst
  // (start(), no trace witness); every later burst opens with a trace event.
  bool burst_open = true;
  ConvergenceSample sample;
  sample.first_event = InvariantChecker::kNoEvent;
  std::size_t messages_at_start = 0;
  const auto messages_now = [&] {
    return network.stats().updates_sent + network.stats().withdrawals_sent;
  };

  const auto close_burst_if_quiet = [&] {
    if (!burst_open || !network.transit_quiet()) return;
    burst_open = false;
    if (sample.first_event == InvariantChecker::kNoEvent) {
      result.initial_convergence = scheduler.now();
      return;
    }
    sample.settled = scheduler.now();
    sample.messages = messages_now() - messages_at_start;
    result.convergence.push_back(sample);
  };

  // Runs the scheduler up to `target`, interleaving protocol events with
  // checkpoint marks in time order (events at a tick fire before the
  // checkpoint that inspects that tick) and watching for quiescence after
  // every protocol step so settle times are exact.
  const auto drive_to = [&](sim::Time target) {
    for (;;) {
      const std::optional<sim::Time> next = scheduler.next_event_within(target);
      const bool checkpoint_due = next_checkpoint <= target;
      if (next && (!checkpoint_due || *next <= next_checkpoint)) {
        result.scheduler_events += scheduler.run_until(*next);
        if (result.scheduler_events > config.max_scheduler_events) {
          throw Error("replay_churn: scheduler event budget exhausted "
                      "(runaway churn reaction?)");
        }
        close_burst_if_quiet();
        continue;
      }
      if (checkpoint_due) {
        result.scheduler_events += scheduler.run_until(next_checkpoint);
        checker.check(scheduler.now());
        // Refresh the RIB accounts at checkpoint cadence so their peaks
        // track churn-driven growth, not just the drained end state. A
        // capacity walk of replay-determined containers — reads only.
        if (obs::MemoryRegistry* mem = obs::memory()) {
          mem->account("bgp/rib").set_current(
              network.rib_footprint().rib_bytes);
          mem->account("churn/checker").set_current(checker.memory_bytes());
        }
        next_checkpoint += config.checkpoint_interval;
        continue;
      }
      result.scheduler_events += scheduler.run_until(target);
      return;
    }
  };

  network.start();

  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const ChurnEvent& event = trace.events[i];
    drive_to(event.time);
    checker.note_event(i);
    if (!burst_open) {
      burst_open = true;
      sample = {};
      sample.first_event = i;
      sample.start = event.time;
      messages_at_start = messages_now();
    }
    sample.last_event = i;
    if (config.ribmon != nullptr) {
      // Every trace event roots its own propagation tree; prefix events
      // happen at the origin (their a/b slots carry kInvalidNode).
      const bool at_origin = event.a == topo::kInvalidNode;
      const obs::RibEventId root = config.ribmon->record_root(
          scheduler.now(), at_origin ? trace.destination : event.a,
          to_string(event.kind),
          event.b == topo::kInvalidNode ? 0 : event.b);
      obs::RibMonitor::CauseScope scope(config.ribmon, root);
      apply_event(network, checker, event);
    } else {
      apply_event(network, checker, event);
    }
  }

  // Drain everything left (reconvergence, MRAI windows, damping reuse
  // timers), still firing interim checkpoints while events remain.
  while (const std::optional<sim::Time> next =
             scheduler.next_event_within(kNever)) {
    drive_to(*next);
  }
  close_burst_if_quiet();
  checker.final_check(scheduler.now());

  result.bgp = network.stats();
  result.violations = checker.violations();
  result.checker = checker.stats();
  result.final_time = scheduler.now();
  result.rib = network.rib_footprint();
  result.checker_bytes = checker.memory_bytes();
  if (obs::MemoryRegistry* mem = obs::memory()) {
    mem->account("bgp/rib").set_current(result.rib.rib_bytes);
    mem->account("churn/checker").set_current(result.checker_bytes);
  }
  return result;
}

}  // namespace miro::churn
