// Fixed-width text table and CSV rendering.
//
// Every bench binary prints the table or figure series it regenerates through
// this writer so that paper-vs-measured comparisons in EXPERIMENTS.md line up
// visually with the dissertation's tables.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace miro {

/// A simple column-aligned table builder.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 2);
  static std::string percent(double fraction, int precision = 1);

  /// Renders with column alignment and a separator rule under the header.
  void print(std::ostream& out) const;

  /// Renders as CSV (RFC-4180-style quoting for cells containing commas).
  void print_csv(std::ostream& out) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace miro
