// Byte-accounting primitives shared by every subsystem.
//
// The memory observability layer (obs/memstats.hpp) keeps a registry of
// named per-subsystem accounts; this header holds the allocation-side
// plumbing those accounts are fed through, deliberately placed in `common`
// so containers in topology/bgp/churn can be tagged without an obs
// dependency:
//
//   - MemCounters: one account's raw tallies (current/peak bytes,
//     allocation/deallocation counts). Plain member arithmetic, no locking —
//     an account belongs to one thread, matching ProfileRegistry.
//   - CountingAllocator<T>: a std::allocator shim charging every
//     allocate/deallocate against a nullable MemCounters*. With a null
//     counter the only cost is one pointer branch per allocation — the same
//     zero-cost-when-disabled contract as the trace and profile planes. The
//     counter pointer propagates on container copy/move/swap so bytes always
//     land in the account that owns the container.
//   - Arena hook: an arena (or any custom pool) charges the same MemCounters
//     via add()/sub() at its block granularity; MemCounters is the interface,
//     not the mechanism.
//
// Two feeding styles coexist, and both update the same counters:
//   live accounting  — CountingAllocator / ScopedAccount add() and sub() as
//                      memory comes and goes (tracks peaks between samples);
//   walk accounting  — an owner computes its exact footprint from container
//                      capacities and set_current()s it at a sample point
//                      (deterministic across thread counts, which is what
//                      lets bytes rows into the bit-identical bench gate).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace miro {

/// One byte account. `current`/`peak` are bytes; `allocations` and
/// `deallocations` count add()/sub() calls (one per container allocation
/// when fed by CountingAllocator). sub() saturates at zero so a mis-paired
/// release can never wrap the account.
struct MemCounters {
  std::uint64_t current = 0;
  std::uint64_t peak = 0;
  std::uint64_t allocations = 0;
  std::uint64_t deallocations = 0;

  void add(std::uint64_t bytes) {
    current += bytes;
    ++allocations;
    if (current > peak) peak = current;
  }
  void sub(std::uint64_t bytes) {
    current -= bytes < current ? bytes : current;
    ++deallocations;
  }
  /// Snapshot-style update for walk accounting: replaces `current` with an
  /// exact measured footprint (peak keeps the high-water mark). Does not
  /// count as an allocation.
  void set_current(std::uint64_t bytes) {
    current = bytes;
    if (current > peak) peak = current;
  }
};

/// Standard-allocator shim charging a nullable MemCounters. All rebound
/// copies of one allocator share the counter, and the counter pointer
/// propagates on container copy-assign, move-assign, and swap (so the
/// account follows the storage, never the destination container's old
/// tag). select_on_container_copy_construction keeps the counter: a copied
/// container's bytes belong to the same subsystem as the original.
template <typename T>
class CountingAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  CountingAllocator() noexcept = default;
  explicit CountingAllocator(MemCounters* counters) noexcept
      : counters_(counters) {}
  template <typename U>
  CountingAllocator(const CountingAllocator<U>& other) noexcept  // NOLINT
      : counters_(other.counters()) {}

  T* allocate(std::size_t n) {
    if (counters_ != nullptr)
      counters_->add(static_cast<std::uint64_t>(n) * sizeof(T));
    return std::allocator<T>{}.allocate(n);
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (counters_ != nullptr)
      counters_->sub(static_cast<std::uint64_t>(n) * sizeof(T));
    std::allocator<T>{}.deallocate(p, n);
  }

  CountingAllocator select_on_container_copy_construction() const noexcept {
    return *this;
  }

  MemCounters* counters() const noexcept { return counters_; }

 private:
  MemCounters* counters_ = nullptr;
};

template <typename A, typename B>
bool operator==(const CountingAllocator<A>& a,
                const CountingAllocator<B>& b) noexcept {
  return a.counters() == b.counters();
}
template <typename A, typename B>
bool operator!=(const CountingAllocator<A>& a,
                const CountingAllocator<B>& b) noexcept {
  return !(a == b);
}

/// Exact byte footprint of a std::vector-shaped buffer: capacity, not size —
/// reserved-but-unused storage is still resident. The helper keeps every
/// walk-accounting site honest about the same convention.
template <typename Vector>
std::uint64_t vector_bytes(const Vector& v) {
  return static_cast<std::uint64_t>(v.capacity()) *
         sizeof(typename Vector::value_type);
}

/// Estimated byte footprint of a node-based hash map (std::unordered_map /
/// std::unordered_set): one bucket pointer per bucket plus, per element, the
/// value_type payload and the libstdc++ node overhead (next pointer + cached
/// hash). An estimate by construction — exact enough for bytes/route
/// regression tracking, and deterministic for a given insertion sequence.
template <typename Map>
std::uint64_t hash_map_bytes(const Map& m) {
  constexpr std::uint64_t kNodeOverhead = 2 * sizeof(void*);
  return static_cast<std::uint64_t>(m.bucket_count()) * sizeof(void*) +
         static_cast<std::uint64_t>(m.size()) *
             (sizeof(typename Map::value_type) + kNodeOverhead);
}

}  // namespace miro
