// Error-handling helpers shared across the MIRO libraries.
//
// The library reports programming errors (violated preconditions) with
// exceptions so that tests can assert on them, and reports expected runtime
// failures (e.g. parse errors) through the same exception type carrying a
// descriptive message.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace miro {

/// Exception thrown for violated preconditions and malformed inputs.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws miro::Error with `message` when `condition` is false.
inline void require(bool condition, std::string_view message) {
  if (!condition) throw Error(std::string(message));
}

}  // namespace miro
