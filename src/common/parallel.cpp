#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"

namespace miro::par {
namespace {

/// True on a thread currently executing a chunk body — nested parallel_for
/// calls from inside a chunk run inline instead of re-entering the pool.
thread_local bool t_in_chunk = false;

std::size_t resolve_auto_count() {
  if (const char* env = std::getenv("MIRO_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0)
      return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::atomic<std::size_t> g_thread_count{0};  // 0 = auto
WorkerContext* g_worker_context = nullptr;

/// Lazily-started grow-only pool. Threads outlive every region; regions
/// only submit work and wait, so growing is the single mutation and it
/// happens under the queue lock before any chunk of the region runs.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  void ensure_threads(std::size_t count) {
    std::lock_guard<std::mutex> lock(mutex_);
    while (threads_.size() < count)
      threads_.emplace_back([this] { worker_loop(); });
  }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  std::size_t threads_running() {
    std::lock_guard<std::mutex> lock(mutex_);
    return threads_.size();
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& thread : threads_) thread.join();
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

/// Join-side state of one region: chunks remaining plus per-chunk errors.
struct RegionState {
  explicit RegionState(std::size_t chunks)
      : remaining(chunks), errors(chunks) {}
  std::mutex mutex;
  std::condition_variable done;
  std::size_t remaining;
  std::vector<std::exception_ptr> errors;
};

}  // namespace

void set_worker_context(WorkerContext* context) {
  g_worker_context = context;
}

WorkerContext* worker_context() { return g_worker_context; }

void set_thread_count(std::size_t count) { g_thread_count.store(count); }

std::size_t thread_count() {
  const std::size_t overridden = g_thread_count.load();
  if (overridden != 0) return overridden;
  static const std::size_t auto_count = resolve_auto_count();
  return auto_count;
}

std::size_t pool_threads_running() {
  return ThreadPool::instance().threads_running();
}

std::size_t chunk_count(std::size_t count) {
  if (count == 0) return 0;
  const std::size_t threads = thread_count();
  if (threads <= 1 || count == 1) return 1;
  return std::min(threads, count);
}

void parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  require(static_cast<bool>(body), "parallel_for: empty body");
  if (count == 0) return;
  const std::size_t threads = thread_count();
  if (threads <= 1 || count == 1 || t_in_chunk) {
    body(0, count, 0);
    return;
  }

  const std::size_t chunks = std::min(threads, count);
  const std::size_t base = count / chunks;
  const std::size_t remainder = count % chunks;

  WorkerContext* context = g_worker_context;
  if (context != nullptr) context->region_begin(chunks);

  ThreadPool& pool = ThreadPool::instance();
  pool.ensure_threads(threads);
  RegionState state(chunks);

  std::size_t begin = 0;
  for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
    const std::size_t size = base + (chunk < remainder ? 1 : 0);
    const std::size_t end = begin + size;
    pool.submit([&state, &body, context, begin, end, chunk] {
      t_in_chunk = true;
      // Hooks share the body's catch: a throwing chunk_enter must not
      // escape worker_loop or skip the remaining-count decrement below.
      try {
        if (context != nullptr) context->chunk_enter(chunk);
        body(begin, end, chunk);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mutex);
        state.errors[chunk] = std::current_exception();
      }
      try {
        if (context != nullptr) context->chunk_exit(chunk);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (!state.errors[chunk]) state.errors[chunk] = std::current_exception();
      }
      t_in_chunk = false;
      // Notify while holding the mutex: once the final unlock happens the
      // joining thread may return and destroy `state`, so the worker must
      // not touch `state.done` after releasing the lock.
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        --state.remaining;
        state.done.notify_one();
      }
    });
    begin = end;
  }

  {
    std::unique_lock<std::mutex> lock(state.mutex);
    state.done.wait(lock, [&state] { return state.remaining == 0; });
  }
  if (context != nullptr) context->region_end();

  // Deterministic failure: the lowest-index chunk's exception wins.
  for (const std::exception_ptr& error : state.errors)
    if (error) std::rethrow_exception(error);
}

}  // namespace miro::par
