// String helpers for the loaders, the policy-language lexer, and output
// formatting. Kept allocation-light: split/trim return string_views into the
// caller's buffer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace miro {

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string_view> split(std::string_view text, char delimiter);

/// Splits on runs of ASCII whitespace; empty fields are dropped.
std::vector<std::string_view> split_whitespace(std::string_view text);

/// Parses a non-negative decimal integer; nullopt on any malformed input.
std::optional<std::uint64_t> parse_u64(std::string_view text);

/// Parses a signed decimal integer; nullopt on any malformed input.
std::optional<std::int64_t> parse_i64(std::string_view text);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// True when `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace miro
