// Deterministic parallel execution layer.
//
// Chapter 5 of MIRO is embarrassingly parallel — hundreds of independent
// per-destination routing-tree solves and thousands of independent
// (source, destination, avoid) tuple evaluations. This layer runs such
// loops across a lazily-started process-wide thread pool while keeping
// every result bit-identical to the serial run:
//
//   * static chunking — [0, count) is split into at most thread_count()
//     contiguous chunks, so which items share a chunk never depends on
//     scheduling;
//   * index-ordered merging — parallel_map writes results by item index,
//     and callers of parallel_for either keep per-chunk accumulators that
//     they merge in chunk order or reduce with order-independent sums;
//   * RNG stays on the calling thread — sampling happens before the loop,
//     workers only consume the sampled items.
//
// Thread count resolution (first match wins): set_thread_count(n > 0),
// the MIRO_THREADS environment variable, std::thread::hardware_concurrency.
// A count of 1 bypasses the pool entirely: the body runs inline on the
// calling thread and no worker machinery is touched, so single-threaded
// runs behave exactly as before this layer existed. Nested parallel_for
// calls (a worker re-entering the layer) also run inline on the worker.
//
// Exceptions thrown by a chunk are captured and the lowest-chunk-index one
// is rethrown on the calling thread after the join, so failure behaviour is
// deterministic too.
//
// The WorkerContext hook lets a higher layer (obs: per-thread profiler
// registries, see obs/profile.hpp) attach per-chunk thread-local state
// without this library depending on it. All hook calls are fully ordered:
// region_begin / region_end on the calling thread around the dispatch,
// chunk_enter / chunk_exit on the executing thread around each body call.
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

namespace miro::par {

/// Per-region extension point (see file comment). Installed process-wide;
/// only one context can be active. All methods are invoked only for real
/// pool dispatches — inline (threads==1, single item, nested) runs skip
/// the hooks entirely.
class WorkerContext {
 public:
  virtual ~WorkerContext() = default;
  /// Calling thread, before any chunk is dispatched.
  virtual void region_begin(std::size_t chunks) = 0;
  /// Executing worker thread, immediately before / after the chunk body.
  virtual void chunk_enter(std::size_t chunk) = 0;
  virtual void chunk_exit(std::size_t chunk) = 0;
  /// Calling thread, after every chunk joined — merge/drain state here.
  virtual void region_end() = 0;
};

/// Installs (or clears, with nullptr) the process-wide worker context.
/// Must not be called while a parallel region is running.
void set_worker_context(WorkerContext* context);
WorkerContext* worker_context();

/// Overrides the pool size; 0 restores automatic resolution
/// (MIRO_THREADS env, else hardware concurrency). Takes effect on the
/// next parallel_for — in-flight regions are unaffected.
void set_thread_count(std::size_t count);

/// The effective thread count the next parallel region will use (>= 1).
std::size_t thread_count();

/// The number of chunks parallel_for(count, ...) will dispatch under the
/// current thread count — for pre-sizing per-chunk accumulators. Nested
/// (inline) execution uses only chunk 0, so sizing by this value is always
/// sufficient.
std::size_t chunk_count(std::size_t count);

/// Splits [0, count) into at most thread_count() contiguous chunks and
/// runs body(begin, end, chunk_index) for each, blocking until all chunks
/// finish. Chunk boundaries depend only on (count, thread_count()).
/// With thread_count()==1 or count<=1 the body runs inline.
void parallel_for(
    std::size_t count,
    const std::function<void(std::size_t begin, std::size_t end,
                             std::size_t chunk)>& body);

/// Maps fn over items with results in item order — the deterministic
/// fan-out/fan-in idiom. The result type must be default-constructible.
template <typename Item, typename Fn>
auto parallel_map(const std::vector<Item>& items, Fn fn)
    -> std::vector<std::invoke_result_t<Fn&, const Item&>> {
  std::vector<std::invoke_result_t<Fn&, const Item&>> out(items.size());
  parallel_for(items.size(), [&](std::size_t begin, std::size_t end,
                                 std::size_t /*chunk*/) {
    for (std::size_t i = begin; i != end; ++i) out[i] = fn(items[i]);
  });
  return out;
}

/// Number of pool threads currently running (0 before first dispatch —
/// the pool starts lazily). Exposed for tests.
std::size_t pool_threads_running();

}  // namespace miro::par
