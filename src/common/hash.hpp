// Hashing helpers: FNV-1a over bytes and a hash_combine for composite keys.
// Used by flow-hash traffic splitting (Section 3.5) and by the convergence
// lab's state fingerprints.
#pragma once

#include <cstdint>
#include <string_view>

namespace miro {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// FNV-1a over an arbitrary byte range, chainable via `seed`.
constexpr std::uint64_t fnv1a(std::string_view bytes,
                              std::uint64_t seed = kFnvOffset) {
  std::uint64_t hash = seed;
  for (char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

/// Mixes a 64-bit value into a running hash (boost-style combine with a
/// stronger mixer).
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  value *= 0xff51afd7ed558ccdULL;
  value ^= value >> 33;
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  return seed;
}

}  // namespace miro
