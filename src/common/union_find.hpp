// Disjoint-set forest with path halving and union by size.
//
// Used to contract sibling-connected AS groups before the stable-route solve
// (the dissertation treats chains of sibling links as transparent when
// classifying routes, Section 2.2.1).
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

namespace miro {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets containing a and b; returns true if they were distinct.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  bool same(std::size_t a, std::size_t b) { return find(a) == find(b); }
  std::size_t set_size(std::size_t x) { return size_[find(x)]; }
  std::size_t element_count() const { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace miro
