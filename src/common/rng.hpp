// Deterministic pseudo-random number generation.
//
// Every stochastic component in this repository (topology generation,
// experiment sampling, activation schedules) draws from an explicitly seeded
// Rng so that all tables and figures are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace miro {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm),
/// re-implemented here: fast, high-quality, and stable across platforms,
/// unlike std::default_random_engine.
class Rng {
 public:
  /// Seeds the generator; distinct seeds give independent streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses rejection sampling, so the result is exactly uniform.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) without replacement
  /// (Floyd's algorithm); order is unspecified but deterministic.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// A value drawn from a Pareto-ish discrete distribution with exponent
  /// `alpha` over [1, max]: P(X >= x) ~ x^(1-alpha). Used for power-law
  /// degree targets in topology generation.
  std::uint64_t power_law(double alpha, std::uint64_t max);

 private:
  std::uint64_t state_[4];
};

}  // namespace miro
