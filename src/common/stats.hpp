// Small descriptive-statistics helpers used by the evaluation harness to
// summarize per-pair/per-tuple measurements into the percentile rows and CDF
// series that the paper's figures plot.
#pragma once

#include <cstddef>
#include <vector>

namespace miro {

/// Accumulates scalar samples and answers percentile/mean queries.
/// Quantiles use the nearest-rank definition so results are exact for the
/// deterministic sample sets produced by the experiments.
class Summary {
 public:
  void add(double value) { values_.push_back(value); }
  void add_count(double value, std::size_t count);

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double mean() const;
  double min() const;
  double max() const;
  /// Nearest-rank percentile; `p` in [0, 100].
  double percentile(double p) const;
  /// Fraction of samples <= threshold.
  double fraction_at_most(double threshold) const;
  /// Fraction of samples >= threshold.
  double fraction_at_least(double threshold) const;

 private:
  void sort_if_needed() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

/// One (x, y) point of an empirical CDF.
struct CdfPoint {
  double value = 0;
  double cumulative_fraction = 0;
};

/// Empirical CDF of `samples` evaluated at each distinct sample value.
std::vector<CdfPoint> empirical_cdf(std::vector<double> samples);

/// Histogram with logarithmic bucket boundaries 1,2,4,8,... — used for the
/// degree-distribution figure.
struct LogHistogramBucket {
  double lower = 0;   // inclusive
  double upper = 0;   // exclusive
  std::size_t count = 0;
};
std::vector<LogHistogramBucket> log2_histogram(const std::vector<double>& samples);

}  // namespace miro
