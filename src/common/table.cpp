#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace miro {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  require(!header_.empty(), "TextTable: header must not be empty");
}

void TextTable::add_row(std::vector<std::string> cells) {
  require(cells.size() == header_.size(),
          "TextTable::add_row: arity mismatch with header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::string TextTable::percent(double fraction, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f%%", precision, fraction * 100.0);
  return buffer;
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
      out << " |";
    }
    out << '\n';
  };

  print_row(header_);
  out << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) out << '-';
    out << '|';
  }
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print_csv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      const std::string& cell = row[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        out << '"';
        for (char ch : cell) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << cell;
      }
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace miro
