// Minimal JSON: escaping helpers for the hand-rolled writers scattered
// through the repo (obs::to_json, MetricsRegistry::write_json,
// bench::BenchJsonWriter, the Chrome-trace exporter), plus a small
// parse/serialize value type for the tools that must *read* JSON back —
// the bench-suite merger, the perf-regression gate, and the round-trip
// tests that prove the writers emit valid documents.
//
// Deliberately tiny: strict UTF-8 passthrough (no \uXXXX decoding beyond
// ASCII), numbers are doubles, object key order is preserved so dumps are
// deterministic and diffs stay readable.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace miro {

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// added): backslash, double quote, and control characters.
std::string json_escape(std::string_view text);

/// Renders a double as a JSON number token. Non-finite values have no JSON
/// representation, so NaN and ±infinity become `null`; integral values
/// print without a fractional part.
std::string json_number(double value);

/// One parsed JSON value. Arrays and objects own their children; object
/// insertion order is preserved.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;  // null
  static JsonValue make_bool(bool value);
  static JsonValue make_number(double value);
  static JsonValue make_string(std::string value);
  static JsonValue make_array();
  static JsonValue make_object();

  /// Parses a complete JSON document; throws miro::Error on malformed input
  /// or trailing garbage.
  static JsonValue parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  /// Typed accessors; throw miro::Error when the kind does not match.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array access. size() also counts object members.
  std::size_t size() const;
  const JsonValue& at(std::size_t index) const;

  /// Object access: get() returns nullptr when the key is absent, at()
  /// throws. Duplicate keys resolve to the first occurrence.
  const JsonValue* get(std::string_view key) const;
  const JsonValue& at(std::string_view key) const;
  bool contains(std::string_view key) const { return get(key) != nullptr; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Builders (valid only on the matching kind; throw otherwise).
  void push_back(JsonValue value);
  void set(std::string key, JsonValue value);

  /// Serializes back to compact JSON (deterministic: preserved key order).
  std::string dump() const;

 private:
  void dump_to(std::string& out) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace miro
