#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace miro {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

// ----------------------------------------------------------------- builders

JsonValue JsonValue::make_bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::make_number(double value) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::make_string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::make_array() {
  JsonValue v;
  v.kind_ = Kind::Array;
  return v;
}

JsonValue JsonValue::make_object() {
  JsonValue v;
  v.kind_ = Kind::Object;
  return v;
}

// ---------------------------------------------------------------- accessors

bool JsonValue::as_bool() const {
  require(kind_ == Kind::Bool, "JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  require(kind_ == Kind::Number, "JsonValue: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  require(kind_ == Kind::String, "JsonValue: not a string");
  return string_;
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::Array) return items_.size();
  if (kind_ == Kind::Object) return members_.size();
  return 0;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  require(kind_ == Kind::Array, "JsonValue: not an array");
  require(index < items_.size(), "JsonValue: array index out of range");
  return items_[index];
}

const JsonValue* JsonValue::get(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = get(key);
  require(value != nullptr,
          "JsonValue: missing object key '" + std::string(key) + "'");
  return *value;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  require(kind_ == Kind::Object, "JsonValue: not an object");
  return members_;
}

void JsonValue::push_back(JsonValue value) {
  require(kind_ == Kind::Array, "JsonValue: push_back on non-array");
  items_.push_back(std::move(value));
}

void JsonValue::set(std::string key, JsonValue value) {
  require(kind_ == Kind::Object, "JsonValue: set on non-object");
  for (auto& [name, existing] : members_) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

// ------------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    require(pos_ == text_.size(), "json: trailing characters after document");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    require(pos_ < text_.size(), "json: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    require(peek() == c, std::string("json: expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue::make_string(parse_string());
    if (consume_literal("true")) return JsonValue::make_bool(true);
    if (consume_literal("false")) return JsonValue::make_bool(false);
    if (consume_literal("null")) return JsonValue();
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue object = JsonValue::make_object();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      require(peek() == '"', "json: object key must be a string");
      std::string key = parse_string();
      expect(':');
      // Append directly (not set()) so duplicate keys are kept; get()
      // resolves duplicates to the first occurrence, matching most readers.
      object.set(std::move(key), parse_value());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return object;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue array = JsonValue::make_array();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.push_back(parse_value());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return array;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      require(pos_ < text_.size(), "json: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      require(pos_ < text_.size(), "json: unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          require(pos_ + 4 <= text_.size(), "json: truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              throw Error("json: bad \\u escape digit");
          }
          // ASCII decodes exactly; higher code points are re-encoded as
          // UTF-8 (no surrogate-pair handling — this parser reads our own
          // writers, which emit \u only for control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: throw Error("json: unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    require(pos_ > start, "json: expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    require(end == token.c_str() + token.size(),
            "json: malformed number '" + token + "'");
    return JsonValue::make_number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

// --------------------------------------------------------------- serializer

void JsonValue::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Number: out += json_number(number_); break;
    case Kind::String:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Kind::Array: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) out += ',';
        items_[i].dump_to(out);
      }
      out += ']';
      break;
    }
    case Kind::Object: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out += ',';
        out += '"';
        out += json_escape(members_[i].first);
        out += "\":";
        members_[i].second.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

}  // namespace miro
