// Bump-pointer arena allocation for solver-owned bulk arrays.
//
// The eval pipeline's dominant heap object is the RoutingTree entry array:
// one fixed-size block per destination, allocated once, never resized, and
// freed only when the owning cache dies. That lifetime pattern is exactly
// what a bump arena serves: allocation is a pointer increment into a slab,
// deallocation is a no-op, and the whole region returns to the OS in one
// free when the arena is destroyed. Besides the constant-factor win, arenas
// keep the trees contiguous in memory (the solver sweep walks them linearly)
// and make the footprint observable as a single number instead of thousands
// of malloc blocks.
//
// ArenaAllocator<T> adapts an Arena to the standard allocator interface so
// std::vector can live inside one. A null arena falls back to the global
// heap — callers that need independent lifetimes (the parallel eval solves,
// hand-built test trees) simply pass nullptr and nothing changes for them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace miro {

/// A growable bump allocator. Not thread-safe: each arena has one writer
/// (the cache that owns it). Memory is reclaimed only on destruction.
class Arena {
 public:
  /// `slab_bytes` is the granularity of growth; requests larger than a slab
  /// get a dedicated block of exactly their size.
  explicit Arena(std::size_t slab_bytes = kDefaultSlabBytes)
      : slab_bytes_(slab_bytes) {
    require(slab_bytes > 0, "Arena: slab size must be positive");
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (which must be a power of
  /// two). Never returns null; throws std::bad_alloc on OS exhaustion like
  /// the global heap would.
  void* allocate(std::size_t bytes, std::size_t align) {
    require(align != 0 && (align & (align - 1)) == 0,
            "Arena: alignment must be a power of two");
    if (bytes == 0) bytes = 1;  // distinct non-null pointers, like operator new
    std::size_t cursor = (cursor_ + align - 1) & ~(align - 1);
    if (slabs_.empty() || cursor + bytes > slabs_.back().size) {
      grow(bytes + align);
      cursor = (cursor_ + align - 1) & ~(align - 1);
    }
    used_ += (cursor - cursor_) + bytes;
    cursor_ = cursor + bytes;
    return slabs_.back().data.get() + cursor;
  }

  /// Bytes handed out (including alignment padding).
  std::uint64_t used_bytes() const { return used_; }
  /// Bytes reserved from the OS across all slabs — the resident footprint
  /// memory accounting reports. Deterministic for a given allocation
  /// sequence.
  std::uint64_t reserved_bytes() const { return reserved_; }
  std::size_t slab_count() const { return slabs_.size(); }

  static constexpr std::size_t kDefaultSlabBytes = std::size_t{1} << 20;

 private:
  struct Slab {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t at_least) {
    const std::size_t size = at_least > slab_bytes_ ? at_least : slab_bytes_;
    slabs_.push_back({std::make_unique<std::byte[]>(size), size});
    reserved_ += size;
    cursor_ = 0;
  }

  std::size_t slab_bytes_;
  std::vector<Slab> slabs_;
  std::size_t cursor_ = 0;  ///< offset into the current (last) slab
  std::uint64_t used_ = 0;
  std::uint64_t reserved_ = 0;
};

/// Standard-allocator adapter over Arena. Null arena = plain heap, so a
/// container type can be arena-capable without forcing every construction
/// site to own an arena. Deallocation into an arena is a no-op; the memory
/// returns when the arena dies.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  // Containers adopt the source's allocator on copy/move/swap so an
  // arena-backed vector can be moved into a heap-backed slot and vice versa
  // without element-wise copies.
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() = default;
  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    if (arena_ != nullptr)
      return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
    return std::allocator<T>{}.allocate(n);
  }
  void deallocate(T* p, std::size_t n) {
    if (arena_ == nullptr) std::allocator<T>{}.deallocate(p, n);
  }

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace miro
