#include "common/strings.hpp"

#include <cctype>

namespace miro {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view text, char delimiter) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      fields.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::vector<std::string_view> split_whitespace(std::string_view text) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) ++i;
    std::size_t start = i;
    while (i < text.size() && !is_space(text[i])) ++i;
    if (i > start) fields.push_back(text.substr(start, i - start));
  }
  return fields;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  return value;
}

std::optional<std::int64_t> parse_i64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  bool negative = false;
  if (text.front() == '-' || text.front() == '+') {
    negative = text.front() == '-';
    text.remove_prefix(1);
  }
  auto magnitude = parse_u64(text);
  if (!magnitude) return std::nullopt;
  if (negative) {
    if (*magnitude > static_cast<std::uint64_t>(INT64_MAX) + 1)
      return std::nullopt;
    return static_cast<std::int64_t>(0 - *magnitude);
  }
  if (*magnitude > static_cast<std::uint64_t>(INT64_MAX)) return std::nullopt;
  return static_cast<std::int64_t>(*magnitude);
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace miro
