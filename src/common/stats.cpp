#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace miro {

void Summary::add_count(double value, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) add(value);
}

void Summary::sort_if_needed() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Summary::mean() const {
  require(!values_.empty(), "Summary::mean on empty sample set");
  double total = 0;
  for (double v : values_) total += v;
  return total / static_cast<double>(values_.size());
}

double Summary::min() const {
  require(!values_.empty(), "Summary::min on empty sample set");
  sort_if_needed();
  return values_.front();
}

double Summary::max() const {
  require(!values_.empty(), "Summary::max on empty sample set");
  sort_if_needed();
  return values_.back();
}

double Summary::percentile(double p) const {
  require(!values_.empty(), "Summary::percentile on empty sample set");
  require(p >= 0 && p <= 100, "Summary::percentile: p outside [0,100]");
  sort_if_needed();
  if (values_.size() == 1) return values_.front();
  // Nearest-rank (ceil) definition.
  const double rank = p / 100.0 * static_cast<double>(values_.size());
  std::size_t index = static_cast<std::size_t>(std::ceil(rank));
  if (index == 0) index = 1;
  if (index > values_.size()) index = values_.size();
  return values_[index - 1];
}

double Summary::fraction_at_most(double threshold) const {
  require(!values_.empty(), "Summary::fraction_at_most on empty sample set");
  sort_if_needed();
  auto it = std::upper_bound(values_.begin(), values_.end(), threshold);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

double Summary::fraction_at_least(double threshold) const {
  require(!values_.empty(), "Summary::fraction_at_least on empty sample set");
  sort_if_needed();
  auto it = std::lower_bound(values_.begin(), values_.end(), threshold);
  return static_cast<double>(values_.end() - it) /
         static_cast<double>(values_.size());
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> samples) {
  std::vector<CdfPoint> points;
  if (samples.empty()) return points;
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const bool last_of_value =
        i + 1 == samples.size() || samples[i + 1] != samples[i];
    if (last_of_value) {
      points.push_back({samples[i], static_cast<double>(i + 1) / n});
    }
  }
  return points;
}

std::vector<LogHistogramBucket> log2_histogram(
    const std::vector<double>& samples) {
  std::vector<LogHistogramBucket> buckets;
  if (samples.empty()) return buckets;
  double max_value = *std::max_element(samples.begin(), samples.end());
  double lower = 1;
  while (lower <= max_value) {
    buckets.push_back({lower, lower * 2, 0});
    lower *= 2;
  }
  for (double s : samples) {
    if (s < 1) continue;
    auto bucket_index = static_cast<std::size_t>(std::floor(std::log2(s)));
    if (bucket_index < buckets.size()) ++buckets[bucket_index].count;
  }
  return buckets;
}

}  // namespace miro
