#include "common/rng.hpp"

#include <cmath>

namespace miro {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: used only to expand the user seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  require(bound > 0, "Rng::next_below: bound must be positive");
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t value = next();
    if (value >= threshold) return value % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::uniform_int: empty range");
  // Span arithmetic in uint64: hi - lo can exceed INT64_MAX.
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  const std::uint64_t offset = span == 0 ? next() : next_below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + offset);
}

double Rng::uniform() {
  // 53 random bits mapped into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  require(k <= n, "Rng::sample_indices: k must not exceed n");
  // Floyd's algorithm: k iterations, set membership via sorted vector would
  // be O(k^2); use a hash-free approach with a vector<bool> when dense.
  std::vector<std::size_t> result;
  result.reserve(k);
  if (k * 4 >= n) {
    // Dense: shuffle a full index vector prefix.
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + static_cast<std::size_t>(next_below(n - i));
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  std::vector<bool> seen(n, false);
  for (std::size_t j = n - k; j < n; ++j) {
    std::size_t t = static_cast<std::size_t>(next_below(j + 1));
    if (seen[t]) t = j;
    seen[t] = true;
    result.push_back(t);
  }
  return result;
}

std::uint64_t Rng::power_law(double alpha, std::uint64_t max) {
  require(alpha > 1.0, "Rng::power_law: alpha must exceed 1");
  require(max >= 1, "Rng::power_law: max must be at least 1");
  // Inverse-CDF sampling of a continuous Pareto, truncated and floored.
  for (;;) {
    double u = uniform();
    double x = std::pow(1.0 - u, -1.0 / (alpha - 1.0));
    if (x <= static_cast<double>(max)) return static_cast<std::uint64_t>(x);
  }
}

}  // namespace miro
