// Layer-3 verification driver: query parsing, the network-wide
// `miro_lint verify` report, and the negotiation-admissibility check.
//
// Queries name endpoints the way operators do — by AS number or by IP
// address. Every AS is assigned a deterministic synthetic /24 and the
// addresses resolve through the longest-prefix-match trie, so
// `avoid:65001:10.0.39.7:7007` and `avoid:65001:39:7007` ask the same
// question. The four static queries of symbolic_routes.hpp surface here as
// Diagnostics with witness routes: reachability and avoid-AS feasibility
// per --query, export-violation/route-leak detection over sampled
// destinations, and negotiation admissibility over a (requester, responder)
// configuration pair.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/symbolic_routes.hpp"
#include "net/address.hpp"
#include "policy/policy_config.hpp"
#include "topology/as_graph.hpp"

namespace miro::analysis {

/// One `--query` spec: `reach:<src>:<dst>` or `avoid:<src>:<dst>:<x>`.
/// Endpoint tokens stay textual until resolve_endpoint() binds them to a
/// graph (decimal AS number, or dotted IPv4 resolved via the synthetic
/// prefixes).
struct VerifyQuery {
  enum class Kind : std::uint8_t { Reach, Avoid };
  Kind kind = Kind::Reach;
  std::string source;
  std::string destination;
  std::string avoid;  ///< Avoid queries only

  /// Parses a spec; throws miro::Error on malformed input.
  static VerifyQuery parse(std::string_view spec);
};

/// The deterministic /24 an AS originates in the verification plane:
/// 10.(asn>>8 & 255).(asn & 255).0/24 (generated AS numbers fit 16 bits).
net::Prefix synthetic_prefix(topo::AsNumber asn);

/// Resolves an endpoint token — a decimal AS number or a dotted IPv4
/// address matched longest-prefix against the synthetic /24s — to a node.
/// Throws miro::Error when the token parses but names no AS in `graph`.
topo::NodeId resolve_endpoint(const topo::AsGraph& graph,
                              std::string_view token);

struct VerifyOptions {
  std::vector<VerifyQuery> queries;
  /// Destinations swept by the network-wide leak check (sampled, seeded)
  /// in addition to every queried destination.
  std::size_t destination_samples = 8;
  std::uint64_t seed = 42;
  /// Also run the differential oracle against the simulator and merge its
  /// findings.
  bool differential = false;
  DifferentialOptions diff;
  SymbolicOptions engine;
};

/// The network-wide verification report: preconditions, per-destination
/// fixpoints + export-safety sweep, the explicit queries, and (optionally)
/// the differential round. Error findings follow the miro_lint contract:
/// an unreachable queried pair, an infeasible avoid, a leak, or a plane
/// divergence is an error; healthy outcomes are notes carrying witnesses.
Report verify_network(const topo::AsGraph& graph, const VerifyOptions& options,
                      std::string_view label = "");

/// Static query #3 — negotiation admissibility: for every negotiation the
/// requester's configuration can start, would the responder's configuration
/// ever admit the session and export an alternate matching the request?
/// Decided from the configs alone: the accept list and tunnel budget, the
/// request pattern's own satisfiability (language_empty), the automaton
/// product of the request pattern against the responder's outbound
/// route-map filters (intersection_empty), and the pricing filters against
/// the requester's maximum cost and the conventional local-preference
/// bands.
Report check_negotiation_admissibility(const policy::BgpConfig& requester,
                                       std::string_view requester_file,
                                       const policy::BgpConfig& responder,
                                       std::string_view responder_file);

}  // namespace miro::analysis
