#include "analysis/convergence_lint.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_set>

#include "bgp/route.hpp"

namespace miro::analysis {

namespace {

using conv::Guideline;
using conv::ModelOptions;
using conv::Path;
using conv::TunnelSpec;
using topo::AsGraph;
using topo::NodeId;
using topo::Relationship;

std::string as_str(const AsGraph& graph, NodeId node) {
  return "AS " + std::to_string(graph.as_number(node));
}

std::string path_str(const AsGraph& graph, const Path& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(graph.as_number(path[i]));
  }
  return out;
}

Guideline guideline_at(const ModelOptions& options, NodeId node) {
  return options.guideline_of ? options.guideline_of(node) : options.guideline;
}

/// Route class of a path at its owner: the first non-sibling link decides
/// (same rule as the convergence model and the BGP engine).
bgp::RouteClass path_class(const AsGraph& graph, const Path& path) {
  if (path.size() < 2) return bgp::RouteClass::Self;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    switch (graph.relationship(path[i], path[i + 1])) {
      case Relationship::Customer: return bgp::RouteClass::Customer;
      case Relationship::Peer: return bgp::RouteClass::Peer;
      case Relationship::Provider: return bgp::RouteClass::Provider;
      case Relationship::Sibling: continue;
    }
  }
  return bgp::RouteClass::Customer;
}

}  // namespace

// ---------------------------------------------------------- Guideline A

std::optional<std::vector<NodeId>> find_provider_cycle(const AsGraph& graph) {
  enum : char { kWhite, kGrey, kBlack };
  std::vector<char> color(graph.node_count(), kWhite);
  std::vector<NodeId> parent(graph.node_count(), topo::kInvalidNode);
  for (NodeId root = 0; root < graph.node_count(); ++root) {
    if (color[root] != kWhite) continue;
    // Iterative DFS: (node, next neighbor index to try).
    std::vector<std::pair<NodeId, std::size_t>> stack{{root, 0}};
    color[root] = kGrey;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const auto providers = graph.neighbors_with(node, Relationship::Provider);
      if (next >= providers.size()) {
        color[node] = kBlack;
        stack.pop_back();
        continue;
      }
      const NodeId provider = providers[next++];
      if (color[provider] == kGrey) {
        // Unwind the grey chain from `node` back to `provider`.
        std::vector<NodeId> cycle{provider};
        for (NodeId walk = node; walk != provider; walk = parent[walk])
          cycle.push_back(walk);
        cycle.push_back(provider);
        std::reverse(cycle.begin() + 1, cycle.end() - 1);
        return cycle;
      }
      if (color[provider] == kWhite) {
        color[provider] = kGrey;
        parent[provider] = node;
        stack.push_back({provider, 0});
      }
    }
  }
  return std::nullopt;
}

namespace {

/// Returns the index of the first step that forms a valley, or nullopt when
/// the path is valley-free (up* flat? down*, siblings transparent).
std::optional<std::size_t> find_valley(const AsGraph& graph, const Path& path) {
  // 0 = still climbing, 1 = crossed the (single) peering link, 2 = descending.
  int phase = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    switch (graph.relationship(path[i], path[i + 1])) {
      case Relationship::Sibling: break;
      case Relationship::Provider:  // going up
        if (phase != 0) return i;
        break;
      case Relationship::Peer:  // the plateau
        if (phase != 0) return i;
        phase = 1;
        break;
      case Relationship::Customer:  // going down
        phase = 2;
        break;
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------- Guideline D

void check_partial_order(Report& report, const AsGraph& graph,
                         const ModelOptions& options, NodeId node,
                         std::string_view label) {
  const auto& order = options.partial_order;
  const std::size_t n = graph.node_count();
  for (NodeId v = 0; v < n; ++v) {
    if (order(node, v, v)) {
      report
          .add(Severity::Error, "conv.guideline-d.order-not-strict",
               "Guideline D order at " + as_str(graph, node) +
                   " is not irreflexive: " + as_str(graph, v) + " ≺ " +
                   as_str(graph, v))
          .at(label)
          .fix("a strict partial order must never relate an element to "
               "itself");
      return;  // one witness per AS is enough
    }
  }
  // Acyclicity: edge v -> d whenever v ≺ d. A cycle in ≺ cannot be extended
  // to any strict partial order; an acyclic relation always can.
  enum : char { kWhite, kGrey, kBlack };
  std::vector<char> color(n, kWhite);
  std::vector<NodeId> parent(n, topo::kInvalidNode);
  for (NodeId root = 0; root < n; ++root) {
    if (color[root] != kWhite) continue;
    std::vector<std::pair<NodeId, NodeId>> stack{{root, 0}};
    color[root] = kGrey;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      while (next < n && (next == v || !order(node, v, next))) ++next;
      if (next >= n) {
        color[v] = kBlack;
        stack.pop_back();
        continue;
      }
      const NodeId d = next++;
      if (color[d] == kGrey) {
        std::vector<NodeId> cycle{d};
        for (NodeId walk = v; walk != d; walk = parent[walk])
          cycle.push_back(walk);
        cycle.push_back(d);
        std::reverse(cycle.begin() + 1, cycle.end() - 1);
        std::string witness;
        for (std::size_t i = 0; i < cycle.size(); ++i) {
          if (i > 0) witness += " ≺ ";
          witness += as_str(graph, cycle[i]);
        }
        report
            .add(Severity::Error, "conv.guideline-d.order-not-strict",
                 "Guideline D order at " + as_str(graph, node) +
                     " contains a cycle, so it is not a strict partial order")
            .at(label)
            .fix("break the cycle; Guideline D's convergence proof needs a "
                 "genuine strict partial order")
            .note("witness: " + witness);
        return;
      }
      if (color[d] == kWhite) {
        color[d] = kGrey;
        parent[d] = v;
        stack.push_back({d, 0});
      }
    }
  }
}

// ------------------------------------------------------- dispute wheel

struct TunnelInfo {
  const TunnelSpec* spec = nullptr;
  std::size_t index = 0;
  bool valid = true;     ///< spec is well-formed over this graph
  bool eligible = true;  ///< passes its requester's guideline gates
  std::optional<Path> path;  ///< representative established path
};

/// Index of the first occurrence of `node` in `path`, or npos.
std::size_t find_on_path(const Path& path, NodeId node) {
  const auto it = std::find(path.begin(), path.end(), node);
  return it == path.end() ? std::string::npos
                          : static_cast<std::size_t>(it - path.begin());
}

bool has_repeated_as(const Path& path) {
  Path sorted = path;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end();
}

/// The baseline (tunnel-free) BGP routes: Guideline A's unique stable
/// solution, computed by running the model without any tunnels.
class Baseline {
 public:
  Baseline(const AsGraph& graph, const std::vector<NodeId>& destinations)
      : model_(graph, destinations, ModelOptions{}),
        destinations_(&destinations) {
    converged_ = model_.run_round_robin(1024).converged;
  }

  bool converged() const { return converged_; }
  bool is_destination(NodeId node) const {
    return std::find(destinations_->begin(), destinations_->end(), node) !=
           destinations_->end();
  }
  const std::optional<Path>& route(NodeId node, NodeId destination) const {
    return model_.route(node, destination).bgp;
  }

 private:
  conv::MiroConvergenceModel model_;
  const std::vector<NodeId>* destinations_;
  bool converged_ = false;
};

/// Would establishing `up` invalidate `t`? This is the dispute edge of the
/// static wheel analysis; see DESIGN.md §9 for the derivation.
bool invalidates(const AsGraph& graph, const ModelOptions& options,
                 const Baseline& baseline, const TunnelInfo& t,
                 const TunnelInfo& up) {
  if (t.index == up.index) return false;
  const TunnelSpec& spec = *t.spec;
  const TunnelSpec& other = *up.spec;

  // --- Offer conflict: `up` changes what t's responder offers. ---
  if (other.requester == spec.responder &&
      other.destination == spec.destination && up.path &&
      up.path->front() == spec.responder) {
    const NodeId r = spec.responder;
    std::optional<Path> offered;
    switch (guideline_at(options, r)) {
      case Guideline::None:
        offered = *up.path;
        break;
      case Guideline::StrictOnly:
      case Guideline::D:
      case Guideline::E: {
        // Strict policy: the tunnel is offered only in its BGP route's
        // class; otherwise the (unchanged) BGP route is.
        const std::optional<Path>& bgp =
            baseline.is_destination(spec.destination)
                ? baseline.route(r, spec.destination)
                : std::optional<Path>{};
        if (!bgp || path_class(graph, *up.path) == path_class(graph, *bgp)) {
          offered = *up.path;
        } else {
          offered = *bgp;
        }
        break;
      }
      case Guideline::B:
        return false;  // tunnels are never offered onward
      case Guideline::C:
        // Tunnel routes propagate only to leaf ASes, which never re-export.
        if (!graph.is_stub(spec.requester)) return false;
        offered = *up.path;
        break;
    }
    if (!offered) return false;
    if (spec.required_path) {
      const std::size_t at = find_on_path(*spec.required_path, r);
      if (at != std::string::npos) {
        const Path needed(spec.required_path->begin() +
                              static_cast<std::ptrdiff_t>(at),
                          spec.required_path->end());
        if (*offered != needed) return true;
      }
    } else if (t.path) {
      // No pinned path: the tunnel survives unless the new offer loops
      // through the requester's own carrier.
      const std::size_t at = find_on_path(*t.path, r);
      if (at != std::string::npos) {
        Path assembled(t.path->begin(),
                       t.path->begin() + static_cast<std::ptrdiff_t>(at));
        assembled.insert(assembled.end(), offered->begin(), offered->end());
        if (has_repeated_as(assembled)) return true;
      }
    }
  }

  // --- Carrier conflict: `up` changes how t's requester reaches its
  // responder (only possible when the responder is itself a prefix). ---
  if (other.requester == spec.requester &&
      other.destination == spec.responder &&
      baseline.is_destination(spec.responder) && up.path) {
    switch (guideline_at(options, spec.requester)) {
      case Guideline::None:
      case Guideline::StrictOnly:
      case Guideline::D:
        break;  // the carrier is the effective route: analysis below
      case Guideline::B:
      case Guideline::C:
        return false;  // tunnels ride pure BGP routes only
      case Guideline::E:
        // E refuses to ride its own tunnel and refuses establishments that
        // would invalidate an existing one: the speaker's tunnels are
        // serialised locally and cannot chase each other (§7.3.3).
        return false;
    }
    if (spec.required_path) {
      const std::size_t at = find_on_path(*spec.required_path, spec.responder);
      if (at != std::string::npos) {
        const Path needed(spec.required_path->begin(),
                          spec.required_path->begin() +
                              static_cast<std::ptrdiff_t>(at) + 1);
        if (*up.path != needed) return true;
      }
    } else if (t.path) {
      const std::size_t at = find_on_path(*t.path, spec.responder);
      if (at != std::string::npos) {
        Path assembled = *up.path;
        assembled.insert(assembled.end(),
                         t.path->begin() + static_cast<std::ptrdiff_t>(at) + 1,
                         t.path->end());
        if (has_repeated_as(assembled)) return true;
      }
    }
  }
  return false;
}

/// Finds a directed cycle among the tunnels under `invalidates`; returns the
/// tunnel indices around the cycle.
std::optional<std::vector<std::size_t>> find_wheel(
    const std::vector<TunnelInfo>& tunnels,
    const std::vector<std::vector<std::size_t>>& edges) {
  enum : char { kWhite, kGrey, kBlack };
  std::vector<char> color(tunnels.size(), kWhite);
  std::vector<std::size_t> parent(tunnels.size(), 0);
  for (std::size_t root = 0; root < tunnels.size(); ++root) {
    if (color[root] != kWhite) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack{{root, 0}};
    color[root] = kGrey;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      if (next >= edges[v].size()) {
        color[v] = kBlack;
        stack.pop_back();
        continue;
      }
      const std::size_t w = edges[v][next++];
      if (color[w] == kGrey) {
        std::vector<std::size_t> cycle{w};
        for (std::size_t walk = v; walk != w; walk = parent[walk])
          cycle.push_back(walk);
        std::reverse(cycle.begin() + 1, cycle.end());
        return cycle;
      }
      if (color[w] == kWhite) {
        color[w] = kGrey;
        parent[w] = v;
        stack.push_back({w, 0});
      }
    }
  }
  return std::nullopt;
}

}  // namespace

Report lint_topology(const AsGraph& graph, std::string_view label) {
  Report report;
  if (const auto cycle = find_provider_cycle(graph)) {
    std::string witness;
    for (std::size_t i = 0; i < cycle->size(); ++i) {
      if (i > 0) witness += " -> ";
      witness += as_str(graph, (*cycle)[i]);
    }
    report
        .add(Severity::Error, "conv.guideline-a.provider-cycle",
             "customer-provider relation contains a cycle: an AS is its own "
             "indirect provider, violating Gao-Rexford Guideline A")
        .at(label)
        .fix("break the cycle (each arrow reads 'is a customer of')")
        .note("witness: " + witness);
  }
  return report;
}

Report lint_system(const AsGraph& graph,
                   const std::vector<NodeId>& destinations,
                   const ModelOptions& options, std::string_view label) {
  Report report = lint_topology(graph, label);
  const bool provider_cycle = !report.empty();

  // --- Guideline assignment survey. ---
  bool any_d = false;
  bool any_unguarded_tunnel = false;
  std::unordered_set<NodeId> d_nodes;
  for (NodeId node = 0; node < graph.node_count(); ++node) {
    if (guideline_at(options, node) == Guideline::D) {
      any_d = true;
      d_nodes.insert(node);
    }
  }
  if (any_d && !options.partial_order) {
    report
        .add(Severity::Error, "conv.guideline-d.order-missing",
             "Guideline D is assigned but no ≺ partial order is declared")
        .at(label)
        .fix("provide ModelOptions::partial_order");
  } else if (any_d) {
    for (NodeId node : d_nodes)
      check_partial_order(report, graph, options, node, label);
  }

  // --- Destination sanity (everything downstream indexes by them). ---
  bool destinations_ok = true;
  for (NodeId dest : destinations) {
    if (dest >= graph.node_count()) {
      destinations_ok = false;
      report
          .add(Severity::Error, "conv.system.bad-destination",
               "destination node id " + std::to_string(dest) +
                   " is not in the topology")
          .at(label);
    }
  }

  // --- Tunnel spec validation. ---
  std::vector<TunnelInfo> tunnels;
  tunnels.reserve(options.tunnels.size());
  for (std::size_t i = 0; i < options.tunnels.size(); ++i) {
    const TunnelSpec& spec = options.tunnels[i];
    TunnelInfo info;
    info.spec = &spec;
    info.index = i;
    const auto bad = [&](const std::string& why) {
      report
          .add(Severity::Error, "conv.tunnel.bad-spec",
               "tunnel specification #" + std::to_string(i) + ": " + why)
          .at(label);
      info.valid = false;
    };
    if (spec.requester >= graph.node_count() ||
        spec.responder >= graph.node_count() ||
        spec.destination >= graph.node_count()) {
      bad("requester, responder, or destination is not in the topology");
    } else if (spec.required_path) {
      const Path& path = *spec.required_path;
      if (path.size() < 2 || path.front() != spec.requester ||
          path.back() != spec.destination) {
        bad("required path must run from the requester to the destination");
      } else if (find_on_path(path, spec.responder) == std::string::npos) {
        bad("required path does not visit the responder");
      } else {
        for (std::size_t j = 0; j + 1 < path.size(); ++j) {
          if (!graph.has_edge(path[j], path[j + 1])) {
            bad("required path uses the non-existent link " +
                as_str(graph, path[j]) + " -- " + as_str(graph, path[j + 1]));
            break;
          }
        }
      }
    }
    tunnels.push_back(std::move(info));
  }

  // --- Per-guideline static checks over the tunnels. ---
  for (const TunnelInfo& info : tunnels) {
    if (!info.valid) continue;
    const TunnelSpec& spec = *info.spec;
    const Guideline g = guideline_at(options, spec.requester);
    if (g == Guideline::None || g == Guideline::StrictOnly)
      any_unguarded_tunnel = true;
    // Valley audit: None/strict ASes re-advertise tunnel routes as BGP
    // routes (and C forwards them to stubs), but the route class only
    // reflects the first link, so a valley inside the tunnel path escapes
    // the conventional export rule.
    const auto has_stub_neighbor = [&] {
      for (const topo::Neighbor& n : graph.neighbors(spec.requester))
        if (graph.is_stub(n.node)) return true;
      return false;
    };
    if (spec.required_path &&
        (g == Guideline::None || g == Guideline::StrictOnly ||
         (g == Guideline::C && has_stub_neighbor()))) {
      if (const auto step = find_valley(graph, *spec.required_path)) {
        const Path& path = *spec.required_path;
        report
            .add(Severity::Warning, "conv.guideline-a.valley-export",
                 "tunnel path " + path_str(graph, path) + " of " +
                     as_str(graph, spec.requester) +
                     " contains a valley at " + as_str(graph, path[*step]) +
                     " and may be re-advertised as a BGP route")
            .at(label)
            .fix("assign Guideline B-E to " + as_str(graph, spec.requester) +
                 " so the tunnel stays out of the BGP layer");
      }
    }
    // Guideline E: a tunnel toward a prefix that is another of the
    // speaker's responders serialises with that tunnel (no-tunnel-over-
    // tunnel); they can never be up simultaneously.
    if (g == Guideline::E) {
      for (const TunnelInfo& other : tunnels) {
        if (!other.valid || other.index == info.index) continue;
        if (other.spec->requester == spec.requester &&
            other.spec->destination == spec.responder) {
          report
              .add(Severity::Note, "conv.guideline-e.serialised",
                   as_str(graph, spec.requester) + "'s tunnel toward " +
                       as_str(graph, spec.destination) + " via " +
                       as_str(graph, spec.responder) +
                       " cannot be up while its tunnel toward " +
                       as_str(graph, other.spec->destination) +
                       " is established (Guideline E forbids riding your "
                       "own tunnel)")
              .at(label);
        }
      }
    }
  }

  // --- Dispute-wheel detection. ---
  if (!provider_cycle && destinations_ok && !destinations.empty() &&
      !tunnels.empty()) {
    const Baseline baseline(graph, destinations);
    if (!baseline.converged()) {
      report
          .add(Severity::Error, "conv.baseline-diverged",
               "the tunnel-free BGP layer itself failed to converge")
          .at(label);
    } else {
      // Representative established path per tunnel, and D's gate.
      for (TunnelInfo& info : tunnels) {
        if (!info.valid) continue;
        const TunnelSpec& spec = *info.spec;
        if (guideline_at(options, spec.requester) == Guideline::D) {
          info.eligible =
              options.partial_order &&
              options.partial_order(spec.requester, spec.responder,
                                    spec.destination);
        }
        if (spec.required_path) {
          info.path = *spec.required_path;
        } else {
          std::optional<Path> carrier;
          if (baseline.is_destination(spec.responder)) {
            carrier = baseline.route(spec.requester, spec.responder);
          } else if (graph.has_edge(spec.requester, spec.responder)) {
            carrier = Path{spec.requester, spec.responder};
          }
          const std::optional<Path>& offer =
              baseline.is_destination(spec.destination)
                  ? baseline.route(spec.responder, spec.destination)
                  : std::optional<Path>{};
          if (carrier && offer && !offer->empty()) {
            info.path = *carrier;
            info.path->insert(info.path->end(), offer->begin() + 1,
                              offer->end());
          }
        }
      }
      std::vector<std::vector<std::size_t>> edges(tunnels.size());
      for (const TunnelInfo& t : tunnels) {
        if (!t.valid || !t.eligible) continue;
        for (const TunnelInfo& up : tunnels) {
          if (!up.valid || !up.eligible) continue;
          if (invalidates(graph, options, baseline, t, up))
            edges[t.index].push_back(up.index);
        }
      }
      if (const auto wheel = find_wheel(tunnels, edges)) {
        std::string pivots;
        for (const std::size_t index : *wheel) {
          if (!pivots.empty()) pivots += " -> ";
          pivots += as_str(graph, tunnels[index].spec->responder);
        }
        pivots += " -> " + as_str(graph, tunnels[*wheel->begin()].spec->responder);
        Diagnostic& diag = report.add(
            Severity::Error, "conv.dispute-wheel",
            "dispute wheel: " + std::to_string(wheel->size()) +
                " tunnels invalidate one another in a cycle; the system can "
                "oscillate forever (pivots " + pivots + ")");
        diag.at(label).fix(
            "apply one of Guidelines B-E at the pivot ASes to break the "
            "wheel");
        for (std::size_t k = 0; k < wheel->size(); ++k) {
          const TunnelInfo& info = tunnels[(*wheel)[k]];
          const TunnelInfo& nxt = tunnels[(*wheel)[(k + 1) % wheel->size()]];
          std::string rim = "pivot " + as_str(graph, info.spec->responder) +
                            ": rim path " +
                            (info.path ? path_str(graph, *info.path)
                                       : std::string("(unpinned)")) +
                            " (" + as_str(graph, info.spec->requester) +
                            "'s tunnel toward " +
                            as_str(graph, info.spec->destination) +
                            "), invalidated when " +
                            as_str(graph, nxt.spec->requester) +
                            "'s tunnel via " +
                            as_str(graph, nxt.spec->responder) + " comes up";
          diag.note(std::move(rim));
        }
      }
    }
  }

  if (any_unguarded_tunnel && !report.has("conv.dispute-wheel")) {
    report
        .add(Severity::Note, "conv.unguarded",
             "tunnels are requested by ASes following no convergence "
             "guideline (B-E); no dispute wheel was found, but safety rests "
             "on this static analysis alone")
        .at(label);
  }
  report.sort();
  return report;
}

}  // namespace miro::analysis
