#include "analysis/symbolic_routes.hpp"

#include <algorithm>
#include <string>
#include <tuple>

#include "analysis/convergence_lint.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/alternates.hpp"
#include "obs/profile.hpp"

namespace miro::analysis {

using bgp::RouteClass;
using topo::AsGraph;

namespace {

std::string as_str(const AsGraph& graph, NodeId node) {
  return "AS " + std::to_string(graph.as_number(node));
}

std::string path_str(const AsGraph& graph, const std::vector<NodeId>& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(graph.as_number(path[i]));
  }
  return out;
}

}  // namespace

// ------------------------------------------------------ SymbolicRouteMap

std::vector<NodeId> SymbolicRouteMap::path_of(NodeId node) const {
  std::vector<NodeId> path;
  if (!entries_[node].reachable) return path;
  NodeId current = node;
  path.push_back(current);
  while (current != destination_) {
    current = entries_[current].next_hop;
    path.push_back(current);
    require(path.size() <= entries_.size(), "SymbolicRouteMap: next-hop loop");
  }
  return path;
}

std::size_t SymbolicRouteMap::reachable_count() const {
  std::size_t count = 0;
  for (const Entry& e : entries_)
    if (e.reachable) ++count;
  return count;
}

bool SymbolicRouteMap::feasible(NodeId node) const {
  const Entry& e = entries_[node];
  for (const std::uint32_t length : e.feasible_length)
    if (length != kInfeasibleLength) return true;
  return false;
}

// --------------------------------------------------- SymbolicRouteEngine

SymbolicRouteEngine::SymbolicRouteEngine(const AsGraph& graph,
                                         SymbolicOptions options)
    : graph_(&graph), options_(options) {}

bool SymbolicRouteEngine::export_allows(RouteClass cls,
                                        topo::Relationship to_rel) const {
  if (options_.inject_export_bug && cls == RouteClass::Peer)
    return true;  // the classic route leak: peer routes go everywhere
  return bgp::conventional_export_allows(cls, to_rel);
}

Report SymbolicRouteEngine::preconditions(std::string_view label) const {
  Report report;
  if (auto cycle = find_provider_cycle(*graph_)) {
    report
        .add(Severity::Error, "verify.precondition.provider-cycle",
             "customer-provider hierarchy is cyclic; the stable state is not "
             "guaranteed to exist, so the symbolic fixpoint is meaningless")
        .at(label)
        .fix("break the provider cycle (Guideline A precondition) before "
             "asking layer-3 queries")
        .note("cycle: " + path_str(*graph_, *cycle));
  }
  return report;
}

SymbolicRouteMap SymbolicRouteEngine::fixpoint(NodeId destination,
                                               NodeId avoid) const {
  obs::ScopedSpan span(obs::profile(), "analysis/symbolic_fixpoint",
                       "analysis");
  const AsGraph& graph = *graph_;
  require(destination < graph.node_count(),
          "SymbolicRouteEngine: destination out of range");
  SymbolicRouteMap map;
  map.destination_ = destination;
  map.entries_.assign(graph.node_count(), {});

  SymbolicRouteMap::Entry& origin = map.entries_[destination];
  origin.reachable = true;
  origin.next_hop = destination;
  origin.length = 0;
  origin.cls = RouteClass::Self;
  origin.feasible_length[bgp::rank(RouteClass::Self)] = 0;

  // Chaotic iteration in node order until nothing moves. Every abstract
  // value only ever improves (the exact triple decreases in the preference
  // order, feasibility masks grow, feasible lengths shrink), and (rank,
  // length) strictly increases along each export edge, so the longest
  // strictly-improving derivation — hence the sweep count — is bounded by
  // the longest simple export chain. The bound below only trips on inputs
  // that violate the preconditions.
  const std::size_t bound =
      options_.max_sweeps != 0 ? options_.max_sweeps : graph.node_count() + 2;
  std::size_t sweeps = 0;
  bool changed = true;
  while (changed) {
    require(sweeps < bound,
            "SymbolicRouteEngine: fixpoint did not stabilize (provider "
            "hierarchy cyclic?)");
    ++sweeps;
    changed = false;
    for (NodeId v = 0; v < graph.node_count(); ++v) {
      if (v == destination || v == avoid) continue;
      SymbolicRouteMap::Entry& entry = map.entries_[v];
      // Exact layer: recompute v's best triple *fresh* from the neighbors'
      // current state every sweep. An incremental min-relaxation would be
      // wrong here: a neighbor's offer is not monotone in the preference
      // order (its class can improve while its path grows, withdrawing the
      // shorter route a previous sweep recorded), so stale minima must be
      // discarded, not kept. Every transient entry still corresponds to a
      // real export chain from the destination, and the stable state is the
      // optimum over all such chains, so no transient value is ever better
      // than the fixpoint — recomputation converges to it from either side.
      bool best_reachable = false;
      RouteClass best_cls = RouteClass::Provider;
      std::uint32_t best_length = 0;
      NodeId best_hop = topo::kInvalidNode;
      for (const topo::Neighbor& n : graph.neighbors(v)) {
        if (n.node == avoid) continue;
        const SymbolicRouteMap::Entry& theirs = map.entries_[n.node];
        // n.rel is what the neighbor is to v; the neighbor's export rule
        // sees v as the reverse.
        const topo::Relationship v_rel = topo::reverse(n.rel);

        if (theirs.reachable && export_allows(theirs.cls, v_rel)) {
          const RouteClass cls = bgp::classify(n.rel, theirs.cls);
          const auto candidate = std::make_tuple(
              bgp::rank(cls), theirs.length + 1, graph.as_number(n.node));
          if (!best_reachable ||
              candidate < std::make_tuple(bgp::rank(best_cls), best_length,
                                          graph.as_number(best_hop))) {
            best_reachable = true;
            best_cls = cls;
            best_length = theirs.length + 1;
            best_hop = n.node;
          }
        }

        // Feasibility layer: any class the neighbor could ever hold and
        // export reaches v re-classified by this link. This layer is a
        // genuine monotone may-analysis (lengths only shrink), so the
        // incremental relaxation is exact.
        for (int r = 0; r < 4; ++r) {
          const std::uint32_t length = theirs.feasible_length[r];
          if (length == kInfeasibleLength) continue;
          const auto their_cls = static_cast<RouteClass>(r);
          if (!export_allows(their_cls, v_rel)) continue;
          std::uint32_t& slot =
              entry.feasible_length[bgp::rank(bgp::classify(n.rel, their_cls))];
          if (length + 1 < slot) {
            slot = length + 1;
            changed = true;
          }
        }
      }
      if (best_reachable != entry.reachable ||
          (best_reachable &&
           (best_cls != entry.cls || best_length != entry.length ||
            best_hop != entry.next_hop))) {
        entry.reachable = best_reachable;
        entry.cls = best_cls;
        entry.length = best_length;
        entry.next_hop = best_hop;
        changed = true;
      }
    }
  }
  map.sweeps_ = sweeps;
  return map;
}

SymbolicRouteMap SymbolicRouteEngine::solve(NodeId destination) const {
  return fixpoint(destination, topo::kInvalidNode);
}

SymbolicRouteMap SymbolicRouteEngine::solve_avoiding(NodeId destination,
                                                     NodeId avoid) const {
  require(avoid != topo::kInvalidNode && avoid != destination,
          "SymbolicRouteEngine::solve_avoiding: cannot avoid the destination");
  return fixpoint(destination, avoid);
}

std::vector<bgp::Route> SymbolicRouteEngine::candidates_at(
    const SymbolicRouteMap& map, NodeId node) const {
  const AsGraph& graph = *graph_;
  std::vector<bgp::Route> candidates;
  if (node == map.destination()) return candidates;
  for (const topo::Neighbor& n : graph.neighbors(node)) {
    if (!map.reachable(n.node)) continue;
    const RouteClass neighbor_cls = map.route_class(n.node);
    if (!export_allows(neighbor_cls, topo::reverse(n.rel))) continue;
    std::vector<NodeId> neighbor_path = map.path_of(n.node);
    if (std::find(neighbor_path.begin(), neighbor_path.end(), node) !=
        neighbor_path.end())
      continue;  // implicit import policy: drop looping paths
    bgp::Route route;
    route.path.reserve(neighbor_path.size() + 1);
    route.path.push_back(node);
    route.path.insert(route.path.end(), neighbor_path.begin(),
                      neighbor_path.end());
    route.route_class = bgp::classify(n.rel, neighbor_cls);
    candidates.push_back(std::move(route));
  }
  std::sort(candidates.begin(), candidates.end(),
            [&graph](const bgp::Route& a, const bgp::Route& b) {
              return bgp::prefer(a, b, graph);
            });
  return candidates;
}

SymbolicRouteEngine::AvoidPrediction SymbolicRouteEngine::predict_avoid(
    const SymbolicRouteMap& map, NodeId source, NodeId avoid,
    core::ExportPolicy policy) const {
  AvoidPrediction result;
  const AsGraph& graph = *graph_;
  const NodeId destination = map.destination();
  require(source != avoid && destination != avoid,
          "predict_avoid: endpoints cannot be the avoided AS");
  if (!map.reachable(source)) return result;
  const std::vector<NodeId> default_path = map.path_of(source);
  const auto avoid_it =
      std::find(default_path.begin(), default_path.end(), avoid);
  require(avoid_it != default_path.end(),
          "predict_avoid: the avoided AS must lie on the source's default "
          "path");
  const auto avoid_index =
      static_cast<std::size_t>(avoid_it - default_path.begin());

  // Plain BGP first: any candidate route at the source that misses the AS.
  for (const bgp::Route& candidate : candidates_at(map, source)) {
    if (!candidate.traverses(avoid)) {
      result.success = true;
      result.bgp_success = true;
      result.witness = candidate.path;
      return result;
    }
  }

  // Negotiate with the ASes on the default path between the source and the
  // offending AS, closest first — the Section 5.3 procedure evaluated over
  // the symbolic state.
  for (std::size_t i = 1; i < avoid_index; ++i) {
    const NodeId responder = default_path[i];
    ++result.ases_contacted;
    // The export relationship is evaluated on the link the offered route
    // will actually be used over: previous hop into the responder.
    const topo::Relationship requester_rel =
        graph.relationship(responder, default_path[i - 1]);
    std::optional<RouteClass> best_class;
    if (map.reachable(responder)) best_class = map.route_class(responder);
    const std::vector<bgp::Route> offers = core::filter_exports(
        policy, candidates_at(map, responder), best_class, requester_rel);
    result.paths_received += offers.size();
    const std::vector<NodeId> prefix(default_path.begin(),
                                     default_path.begin() + i + 1);
    for (const bgp::Route& offered : offers) {
      if (offered.traverses(avoid)) continue;
      // Splice check: no node of the offered suffix beyond the responder
      // may re-appear in the prefix.
      bool loops = false;
      for (std::size_t j = 1; j < offered.path.size() && !loops; ++j)
        loops = std::find(prefix.begin(), prefix.end(), offered.path[j]) !=
                prefix.end();
      if (loops) continue;
      result.success = true;
      result.witness = prefix;
      result.witness.insert(result.witness.end(), offered.path.begin() + 1,
                            offered.path.end());
      return result;
    }
  }
  return result;
}

// --------------------------------------------------- export safety / leaks

namespace {

/// Shared hop-by-hop validator over either plane: `state` needs the
/// RoutingTree-shaped accessors (destination/reachable/route_class/
/// next_hop/path_length/path_of).
template <typename State>
Report check_export_safety_impl(const AsGraph& graph, const State& state,
                                std::string_view label, const char* plane) {
  Report report;
  const NodeId destination = state.destination();
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    if (!state.reachable(v)) continue;
    if (v == destination) {
      if (state.route_class(v) != RouteClass::Self ||
          state.path_length(v) != 0 || state.next_hop(v) != v) {
        report
            .add(Severity::Error, "verify.leak.origin",
                 std::string(plane) + " state corrupts the origin entry of " +
                     as_str(graph, v))
            .at(label);
      }
      continue;
    }
    const NodeId hop = state.next_hop(v);
    if (hop >= graph.node_count() || hop == v || !graph.has_edge(v, hop) ||
        !state.reachable(hop)) {
      report
          .add(Severity::Error, "verify.leak.next-hop",
               as_str(graph, v) + " has an invalid next hop in the " + plane +
                   " state")
          .at(label);
      continue;
    }
    // hop_rel: what the next hop is to v — the link the route arrived on.
    const topo::Relationship hop_rel = graph.relationship(v, hop);
    const RouteClass hop_cls = state.route_class(hop);
    if (!bgp::conventional_export_allows(hop_cls, topo::reverse(hop_rel))) {
      report
          .add(Severity::Error, "verify.leak.export-violation",
               as_str(graph, hop) + " exports a " +
                   bgp::to_string(hop_cls) + " route to " + as_str(graph, v) +
                   ", which the conventional policy forbids (route leak)")
          .at(label)
          .note("leaked path: " + path_str(graph, state.path_of(v)));
    }
    const RouteClass expected = bgp::classify(hop_rel, hop_cls);
    if (state.route_class(v) != expected) {
      report
          .add(Severity::Error, "verify.leak.class",
               as_str(graph, v) + " classifies its " + plane + " route as " +
                   bgp::to_string(state.route_class(v)) + "; the " +
                   bgp::to_string(hop_cls) + " route via " +
                   as_str(graph, hop) + " must classify as " +
                   bgp::to_string(expected))
          .at(label);
    }
    if (state.path_length(v) != state.path_length(hop) + 1) {
      report
          .add(Severity::Error, "verify.leak.length",
               as_str(graph, v) + " advertises path length " +
                   std::to_string(state.path_length(v)) + " but its next hop " +
                   as_str(graph, hop) + " holds length " +
                   std::to_string(state.path_length(hop)))
          .at(label);
    }
  }
  report.sort();
  return report;
}

}  // namespace

Report check_export_safety(const AsGraph& graph, const SymbolicRouteMap& map,
                           std::string_view label) {
  return check_export_safety_impl(graph, map, label, "symbolic");
}

Report check_export_safety(const AsGraph& graph, const bgp::RoutingTree& tree,
                           std::string_view label) {
  return check_export_safety_impl(graph, tree, label, "simulated");
}

// ------------------------------------------------------------ differential

DifferentialOutcome differential_check(const AsGraph& graph,
                                       const DifferentialOptions& options,
                                       std::string_view label) {
  obs::ScopedSpan span(obs::profile(), "analysis/differential", "analysis");
  DifferentialOutcome out;
  SymbolicRouteEngine engine(graph, options.engine);

  Report pre = engine.preconditions(label);
  if (pre.error_count() != 0) {
    out.report.merge(pre);
    return out;
  }

  const bgp::StableRouteSolver solver(graph);
  const core::AlternatesEngine alternates(solver);
  const std::size_t n = graph.node_count();
  std::size_t suppressed = 0;
  auto witness = [&](std::string_view check, std::string message) {
    if (out.report.size() >= options.max_witnesses) {
      ++suppressed;
      return;
    }
    out.report.add(Severity::Error, check, std::move(message)).at(label);
  };

  // Entry-by-entry comparison of one (simulated, symbolic) tree pair.
  auto compare_trees = [&](const bgp::RoutingTree& tree,
                           const SymbolicRouteMap& map,
                           std::string_view check, const std::string& what) {
    for (NodeId v = 0; v < n; ++v) {
      ++out.entries;
      std::string diff;
      if (tree.reachable(v) != map.reachable(v)) {
        diff = std::string("reachable ") +
               (tree.reachable(v) ? "true" : "false") + " vs " +
               (map.reachable(v) ? "true" : "false");
      } else if (tree.reachable(v)) {
        if (tree.route_class(v) != map.route_class(v))
          diff = std::string("class ") + bgp::to_string(tree.route_class(v)) +
                 " vs " + bgp::to_string(map.route_class(v));
        else if (tree.path_length(v) != map.path_length(v))
          diff = "length " + std::to_string(tree.path_length(v)) + " vs " +
                 std::to_string(map.path_length(v));
        else if (tree.next_hop(v) != map.next_hop(v))
          diff = "next hop " + as_str(graph, tree.next_hop(v)) + " vs " +
                 as_str(graph, map.next_hop(v));
      }
      if (!diff.empty()) {
        ++out.entry_mismatches;
        witness(check, what + ": simulated and symbolic states of " +
                           as_str(graph, v) + " diverge (" + diff + ")");
      }
    }
  };

  Rng rng(options.seed);
  std::vector<NodeId> destinations;
  for (const std::size_t index :
       rng.sample_indices(n, std::min(options.destination_samples, n)))
    destinations.push_back(static_cast<NodeId>(index));
  std::sort(destinations.begin(), destinations.end());

  for (const NodeId destination : destinations) {
    ++out.destinations;
    const bgp::RoutingTree tree = solver.solve(destination);
    const SymbolicRouteMap map = engine.solve(destination);
    const std::string what = "destination " + as_str(graph, destination);
    compare_trees(tree, map, "verify.diff.entry", what);

    // Feasibility layer vs ground truth: a node has an admissible route in
    // the abstraction iff the stable state reaches it.
    for (NodeId v = 0; v < n; ++v) {
      if (map.feasible(v) != tree.reachable(v)) {
        ++out.entry_mismatches;
        witness("verify.diff.feasible",
                what + ": feasibility abstraction disagrees with stable "
                       "reachability at " +
                    as_str(graph, v));
      }
    }

    // Both planes must be leak-free against the conventional export rule.
    for (const Report& safety :
         {check_export_safety(graph, tree, label),
          check_export_safety(graph, map, label)}) {
      for (const Diagnostic& d : safety.diagnostics())
        if (d.severity == Severity::Error)
          witness(d.check, what + ": " + d.message);
      if (safety.error_count() != 0) ++out.entry_mismatches;
    }

    // Avoid-AS verdicts: every intermediate AS of every sampled source's
    // default path, under all three export policies, plus one poisoned
    // fixpoint cross-check per destination.
    const std::size_t want = std::min(options.sources_per_destination, n - 1);
    const std::size_t draw = std::min(n, want * 2 + 8);
    std::size_t taken = 0;
    bool poisoned_checked = false;
    for (const std::size_t index : rng.sample_indices(n, draw)) {
      if (taken >= want) break;
      const auto source = static_cast<NodeId>(index);
      if (source == destination || !tree.reachable(source)) continue;
      ++taken;
      const std::vector<NodeId> path = tree.path_of(source);
      if (map.path_of(source) != path) continue;  // already convicted above
      for (std::size_t i = 1; i + 1 < path.size(); ++i) {
        const NodeId avoid = path[i];
        if (!poisoned_checked) {
          poisoned_checked = true;
          compare_trees(solver.solve_avoiding(destination, avoid),
                        engine.solve_avoiding(destination, avoid),
                        "verify.diff.avoid-tree",
                        what + " avoiding " + as_str(graph, avoid));
        }
        for (const core::ExportPolicy policy : core::kAllPolicies) {
          ++out.tuples;
          const core::AlternatesEngine::AvoidResult simulated =
              alternates.avoid_as(tree, source, avoid, policy);
          const SymbolicRouteEngine::AvoidPrediction predicted =
              engine.predict_avoid(map, source, avoid, policy);
          std::string diff;
          if (simulated.success != predicted.success)
            diff = "success";
          else if (simulated.bgp_success != predicted.bgp_success)
            diff = "bgp_success";
          else if (simulated.ases_contacted != predicted.ases_contacted)
            diff = "ases_contacted";
          else if (simulated.paths_received != predicted.paths_received)
            diff = "paths_received";
          if (!diff.empty()) {
            ++out.avoid_mismatches;
            witness("verify.diff.avoid",
                    "avoid(" + as_str(graph, source) + " -> " +
                        as_str(graph, destination) + " around " +
                        as_str(graph, avoid) + ", " + to_string(policy) +
                        "): planes disagree on " + diff);
          }
        }
      }
    }
  }

  Diagnostic& summary = out.report.add(
      Severity::Note, "verify.diff.summary",
      std::to_string(out.destinations) + " destinations, " +
          std::to_string(out.entries) + " tree entries, " +
          std::to_string(out.tuples) + " avoid tuples compared: " +
          std::to_string(out.entry_mismatches) + " entry and " +
          std::to_string(out.avoid_mismatches) + " avoid divergences");
  summary.at(label);
  if (suppressed != 0)
    summary.note(std::to_string(suppressed) +
                 " further divergence witnesses suppressed");
  return out;
}

}  // namespace miro::analysis
