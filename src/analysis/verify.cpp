#include "analysis/verify.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/prefix_trie.hpp"

namespace miro::analysis {

using topo::AsGraph;

namespace {

std::string as_str(const AsGraph& graph, NodeId node) {
  return "AS " + std::to_string(graph.as_number(node));
}

std::string path_str(const AsGraph& graph, const std::vector<NodeId>& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(graph.as_number(path[i]));
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    if (end == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

}  // namespace

VerifyQuery VerifyQuery::parse(std::string_view spec) {
  const std::vector<std::string> parts = split(spec, ':');
  VerifyQuery query;
  if (parts.size() == 3 && parts[0] == "reach") {
    query.kind = Kind::Reach;
  } else if (parts.size() == 4 && parts[0] == "avoid") {
    query.kind = Kind::Avoid;
    query.avoid = parts[3];
  } else {
    throw Error("bad query '" + std::string(spec) +
                "': expected reach:<src>:<dst> or avoid:<src>:<dst>:<x>");
  }
  query.source = parts[1];
  query.destination = parts[2];
  if (query.source.empty() || query.destination.empty() ||
      (query.kind == Kind::Avoid && query.avoid.empty()))
    throw Error("bad query '" + std::string(spec) + "': empty endpoint");
  return query;
}

net::Prefix synthetic_prefix(topo::AsNumber asn) {
  return {net::Ipv4Address(10, static_cast<std::uint8_t>((asn >> 8) & 0xFF),
                           static_cast<std::uint8_t>(asn & 0xFF), 0),
          24};
}

topo::NodeId resolve_endpoint(const AsGraph& graph, std::string_view token) {
  const std::string text(token);
  if (text.find('.') != std::string::npos) {
    const auto address = net::Ipv4Address::parse(text);
    if (!address.has_value())
      throw Error("bad endpoint '" + text + "': not an IPv4 address");
    net::PrefixTrie<NodeId> trie;
    for (NodeId node = 0; node < graph.node_count(); ++node)
      trie.insert(synthetic_prefix(graph.as_number(node)), node);
    const auto match = trie.lookup(*address);
    if (!match.has_value())
      throw Error("endpoint '" + text + "' matches no AS prefix");
    return *match->value;
  }
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos)
    throw Error("bad endpoint '" + text + "': expected an AS number or IPv4 "
                "address");
  const auto asn = static_cast<topo::AsNumber>(std::stoul(text));
  const NodeId node = graph.find(asn);
  if (node == topo::kInvalidNode)
    throw Error("endpoint AS " + text + " is not in the topology");
  return node;
}

Report verify_network(const AsGraph& graph, const VerifyOptions& options,
                      std::string_view label) {
  Report report;
  SymbolicRouteEngine engine(graph, options.engine);
  report.merge(engine.preconditions(label));
  if (report.error_count() != 0) {
    report.sort();
    return report;
  }

  // Resolve the queries first so malformed endpoints throw before any
  // fixpoint work (the CLI maps that to a usage error, not a finding).
  struct Resolved {
    const VerifyQuery* query;
    NodeId source;
    NodeId destination;
    NodeId avoid;
  };
  std::vector<Resolved> resolved;
  resolved.reserve(options.queries.size());
  for (const VerifyQuery& query : options.queries) {
    Resolved r{&query, resolve_endpoint(graph, query.source),
               resolve_endpoint(graph, query.destination), topo::kInvalidNode};
    if (query.kind == VerifyQuery::Kind::Avoid) {
      r.avoid = resolve_endpoint(graph, query.avoid);
      if (r.avoid == r.source || r.avoid == r.destination)
        throw Error("query avoid endpoint equals an endpoint of the pair");
    }
    resolved.push_back(r);
  }

  // Destination sweep: every queried destination plus a seeded sample.
  std::vector<NodeId> destinations;
  for (const Resolved& r : resolved) destinations.push_back(r.destination);
  Rng rng(options.seed);
  for (const std::size_t index : rng.sample_indices(
           graph.node_count(),
           std::min(options.destination_samples, graph.node_count())))
    destinations.push_back(static_cast<NodeId>(index));
  std::sort(destinations.begin(), destinations.end());
  destinations.erase(std::unique(destinations.begin(), destinations.end()),
                     destinations.end());

  // One fixpoint per destination, leak-checked as it lands; the maps are
  // kept for the queries below.
  std::map<NodeId, SymbolicRouteMap> maps;
  std::size_t reachable_entries = 0;
  std::size_t leak_errors = 0;
  for (const NodeId destination : destinations) {
    SymbolicRouteMap map = engine.solve(destination);
    const Report safety = check_export_safety(graph, map, label);
    leak_errors += safety.error_count();
    report.merge(safety);
    reachable_entries += map.reachable_count();
    maps.emplace(destination, std::move(map));
  }
  report
      .add(Severity::Note, "verify.sweep.summary",
           std::to_string(destinations.size()) + " destinations verified: " +
               std::to_string(reachable_entries) + " routes admitted, " +
               std::to_string(leak_errors) + " export violations")
      .at(label);

  // Explicit queries, with witness routes.
  for (const Resolved& r : resolved) {
    const SymbolicRouteMap& map = maps.at(r.destination);
    const std::string pair =
        as_str(graph, r.source) + " -> " + as_str(graph, r.destination);
    if (!map.reachable(r.source)) {
      report
          .add(Severity::Error, "verify.query.unreachable",
               pair + ": no admissible route exists")
          .at(label);
      continue;
    }
    if (r.query->kind == VerifyQuery::Kind::Reach) {
      Diagnostic& d =
          report
              .add(Severity::Note, "verify.query.reach",
                   pair + ": reachable via a " +
                       bgp::to_string(map.route_class(r.source)) +
                       " route of length " +
                       std::to_string(map.path_length(r.source)))
              .at(label)
              .note("best path: " + path_str(graph, map.path_of(r.source)));
      std::string classes;
      for (const bgp::RouteClass cls :
           {bgp::RouteClass::Customer, bgp::RouteClass::Peer,
            bgp::RouteClass::Provider}) {
        if (!map.feasible(r.source, cls)) continue;
        if (!classes.empty()) classes += ", ";
        classes += bgp::to_string(cls);
        classes += " (>= " +
                   std::to_string(map.feasible_length(r.source, cls)) +
                   " hops)";
      }
      if (!classes.empty()) d.note("admissible classes: " + classes);
      continue;
    }

    // Avoid query: static Table 5.2 prediction per export policy, plus the
    // graph-level feasibility bound from the poisoned fixpoint.
    const std::vector<NodeId> default_path = map.path_of(r.source);
    const std::string question = pair + " avoiding " + as_str(graph, r.avoid);
    if (std::find(default_path.begin(), default_path.end(), r.avoid) ==
        default_path.end()) {
      report
          .add(Severity::Note, "verify.query.avoid",
               question + ": the default path already avoids it")
          .at(label)
          .note("default path: " + path_str(graph, default_path));
      continue;
    }
    const bool feasible =
        engine.solve_avoiding(r.destination, r.avoid).reachable(r.source);
    bool any_success = false;
    std::vector<std::string> verdicts;
    std::vector<NodeId> witness;
    for (const core::ExportPolicy policy : core::kAllPolicies) {
      const SymbolicRouteEngine::AvoidPrediction prediction =
          engine.predict_avoid(map, r.source, r.avoid, policy);
      std::string line = std::string(core::to_string(policy)) + ": " +
                         (prediction.success
                              ? (prediction.bgp_success ? "avoided by plain BGP"
                                                        : "avoided by MIRO")
                              : "not avoidable");
      if (prediction.success && witness.empty()) witness = prediction.witness;
      any_success |= prediction.success;
      verdicts.push_back(std::move(line));
    }
    Diagnostic& d =
        any_success
            ? report
                  .add(Severity::Note, "verify.query.avoid",
                       question + ": avoidable")
                  .at(label)
            : report
                  .add(Severity::Error,
                       feasible ? "verify.query.avoid-failed"
                                : "verify.query.avoid-infeasible",
                       question +
                           (feasible
                                ? ": the negotiation procedure fails under "
                                  "every export policy (a clean path exists "
                                  "but is never offered)"
                                : ": no path at all avoids it"))
                  .at(label);
    for (std::string& line : verdicts) d.note(std::move(line));
    if (!witness.empty()) d.note("witness: " + path_str(graph, witness));
  }

  if (options.differential) {
    DifferentialOptions diff = options.diff;
    diff.engine = options.engine;
    report.merge(differential_check(graph, diff, label).report);
  }
  report.sort();
  return report;
}

Report check_negotiation_admissibility(const policy::BgpConfig& requester,
                                       std::string_view requester_file,
                                       const policy::BgpConfig& responder,
                                       std::string_view responder_file) {
  Report report;
  if (requester.negotiations.empty()) {
    report
        .add(Severity::Note, "verify.admit.none",
             "requester configuration defines no negotiations")
        .at(requester_file);
    return report;
  }

  for (const auto& [name, spec] : requester.negotiations) {
    const std::string who = "negotiation '" + name + "'";

    // The request pattern must be satisfiable at all before anything the
    // responder does matters.
    if (spec.target_path_regex.has_value() &&
        spec.target_path_regex->language_empty()) {
      report
          .add(Severity::Error, "verify.admit.empty-request",
               who + " can never start: its path pattern '" +
                   spec.target_path_regex->pattern() +
                   "' matches no AS path")
          .at(requester_file, spec.target_path_line)
          .fix("relax the match all path pattern");
      continue;
    }

    if (!responder.responder.has_value()) {
      report
          .add(Severity::Error, "verify.admit.no-responder",
               who + " is never admitted: the responder configuration has "
                     "no accept negotiation block")
          .at(responder_file)
          .fix("add an accept negotiation statement");
      continue;
    }
    const policy::ResponderSpec& accept = *responder.responder;

    if (!accept.accept_any) {
      if (!requester.local_as.has_value()) {
        report
            .add(Severity::Warning, "verify.admit.unknown-asn",
                 who + ": requester has no router bgp statement, so the "
                       "responder's accept list cannot be checked")
            .at(requester_file);
      } else if (std::find(accept.accept_asns.begin(),
                           accept.accept_asns.end(),
                           *requester.local_as) == accept.accept_asns.end()) {
        report
            .add(Severity::Error, "verify.admit.rejected-asn",
                 who + " is rejected: AS " +
                     std::to_string(*requester.local_as) +
                     " is not on the responder's accept list")
            .at(responder_file)
            .fix("add the requester to accept negotiation from as ...");
        continue;
      }
    }

    if (accept.max_tunnels.has_value() && *accept.max_tunnels == 0) {
      report
          .add(Severity::Error, "verify.admit.no-budget",
               who + " is admitted but can never establish: the responder's "
                     "tunnel budget is zero")
          .at(responder_file, accept.when_line)
          .fix("raise when tunnel_number < ...")
          .note("when tunnel_number < 0 admits no tunnel at all");
      continue;
    }

    // Automaton product: can any AS path match the request pattern *and*
    // survive the responder's outbound route map toward the requester?
    bool filtered = false;
    if (spec.target_path_regex.has_value() && requester.local_as.has_value()) {
      const policy::NeighborBinding* binding = nullptr;
      for (const policy::NeighborBinding& neighbor : responder.neighbors) {
        if (neighbor.remote_as.has_value() &&
            *neighbor.remote_as == *requester.local_as &&
            neighbor.route_map_out.has_value())
          binding = &neighbor;
      }
      if (binding != nullptr) {
        bool exportable = false;
        bool any_permit_clause = false;
        for (const policy::RouteMapClause* clause :
             responder.route_map(*binding->route_map_out)) {
          if (!clause->permit) continue;
          any_permit_clause = true;
          if (!clause->match_as_path_acl.has_value()) {
            exportable = true;  // a bare permit clause passes everything
            break;
          }
          const policy::AsPathAccessList* acl =
              responder.access_list(*clause->match_as_path_acl);
          if (acl == nullptr) {
            exportable = true;  // undefined acl: layer 1's finding, not ours
            break;
          }
          for (const policy::AsPathAccessList::Entry& entry : acl->entries) {
            if (!entry.permit) continue;  // denies only shrink the language
            if (!spec.target_path_regex->intersection_empty(entry.regex)) {
              exportable = true;
              break;
            }
          }
          if (exportable) break;
        }
        if (!exportable) {
          filtered = true;
          report
              .add(Severity::Error, "verify.admit.filtered",
                   who + " can never be satisfied: the responder's outbound "
                         "route-map '" +
                       *binding->route_map_out +
                       (any_permit_clause
                            ? "' shares no AS path with the request pattern '"
                            : "' permits nothing, so it cannot match '") +
                       spec.target_path_regex->pattern() + "'")
              .at(responder_file, binding->route_map_out_line)
              .fix("permit an as-path access-list overlapping the request");
        }
      }
    }
    if (filtered) continue;

    // Pricing: the cheapest alternate the responder would sell, given the
    // conventional local-preference bands, against the requester's budget.
    if (spec.max_cost.has_value() && !accept.filters.empty()) {
      std::optional<int> cheapest;
      for (const bgp::RouteClass cls :
           {bgp::RouteClass::Customer, bgp::RouteClass::Peer,
            bgp::RouteClass::Provider}) {
        const int pref = bgp::conventional_local_pref(cls);
        for (const policy::ResponderSpec::Filter& filter : accept.filters) {
          if (pref > filter.local_pref_greater) {
            if (!cheapest.has_value() || filter.tunnel_cost < *cheapest)
              cheapest = filter.tunnel_cost;
            break;  // first matching filter prices this class
          }
        }
      }
      if (cheapest.has_value() && *cheapest > *spec.max_cost) {
        report
            .add(Severity::Error, "verify.admit.too-expensive",
                 who + " can never settle: every alternate the responder "
                       "sells costs at least " +
                     std::to_string(*cheapest) +
                     ", but the requester pays at most " +
                     std::to_string(*spec.max_cost))
            .at(requester_file, spec.line)
            .fix("raise start negotiation with maximum cost or lower the "
                 "responder's tunnel_cost filters");
        continue;
      }
    }

    report
        .add(Severity::Note, "verify.admit.ok",
             who + " is admissible under the responder's configuration")
        .at(requester_file, spec.line);
  }
  report.sort();
  return report;
}

}  // namespace miro::analysis
