// Compiler-style structured diagnostics for the static analyzers.
//
// Every finding the linters emit is a Diagnostic: a severity, a stable
// check id (the catalog lives in DESIGN.md §9), an optional source location,
// a one-line message, an optional fix-it hint, and free-form note lines that
// carry witnesses (a provider cycle, a dispute wheel's rim paths). A Report
// collects diagnostics and renders them as text ("file:line: error: ...
// [check.id]") or as JSON via common/json, so tools can consume the output
// mechanically (the CI gadget artifact) while humans read the same findings
// in terminal form.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"

namespace miro::analysis {

enum class Severity : std::uint8_t { Note = 0, Warning = 1, Error = 2 };

const char* to_string(Severity severity);

struct Diagnostic {
  Severity severity = Severity::Warning;
  std::string check;  ///< stable id, e.g. "policy.acl.undefined"
  std::string file;   ///< config path or system label; "" when none
  int line = 0;       ///< 1-based source line; 0 when not file-based
  std::string message;
  std::string hint;                ///< fix-it suggestion; "" when none
  std::vector<std::string> notes;  ///< witness lines, rendered indented

  /// Fluent location/hint setters so checks read as one statement.
  Diagnostic& at(std::string_view in_file, int at_line = 0);
  Diagnostic& fix(std::string_view fix_hint);
  Diagnostic& note(std::string note_line);
};

/// An ordered collection of diagnostics plus the renderers.
class Report {
 public:
  /// Appends a diagnostic and returns it for fluent decoration.
  Diagnostic& add(Severity severity, std::string_view check,
                  std::string message);
  /// Appends every diagnostic of `other`.
  void merge(const Report& other);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  std::size_t size() const { return diagnostics_.size(); }
  std::size_t count(Severity severity) const;
  std::size_t error_count() const { return count(Severity::Error); }
  /// True when a diagnostic with the given check id was emitted.
  bool has(std::string_view check) const;

  /// Stable order for deterministic output: (file, line, severity desc,
  /// check, message), preserving insertion order among equals.
  void sort();

  /// `file:line: severity: message [check.id]` per diagnostic, hint and
  /// notes indented underneath.
  void render_text(std::ostream& out) const;
  std::string text() const;

  /// {"diagnostics": [...], "counts": {"error": n, "warning": n, "note": n}}
  JsonValue to_json() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace miro::analysis
