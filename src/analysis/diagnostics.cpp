#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <tuple>

namespace miro::analysis {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

Diagnostic& Diagnostic::at(std::string_view in_file, int at_line) {
  file = std::string(in_file);
  line = at_line;
  return *this;
}

Diagnostic& Diagnostic::fix(std::string_view fix_hint) {
  hint = std::string(fix_hint);
  return *this;
}

Diagnostic& Diagnostic::note(std::string note_line) {
  notes.push_back(std::move(note_line));
  return *this;
}

Diagnostic& Report::add(Severity severity, std::string_view check,
                        std::string message) {
  Diagnostic diagnostic;
  diagnostic.severity = severity;
  diagnostic.check = std::string(check);
  diagnostic.message = std::move(message);
  diagnostics_.push_back(std::move(diagnostic));
  return diagnostics_.back();
}

void Report::merge(const Report& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
}

std::size_t Report::count(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics_)
    if (d.severity == severity) ++n;
  return n;
}

bool Report::has(std::string_view check) const {
  for (const Diagnostic& d : diagnostics_)
    if (d.check == check) return true;
  return false;
}

void Report::sort() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.file, a.line) < std::tie(b.file, b.line);
                   });
}

void Report::render_text(std::ostream& out) const {
  for (const Diagnostic& d : diagnostics_) {
    if (!d.file.empty()) {
      out << d.file << ':';
      if (d.line > 0) out << d.line << ':';
      out << ' ';
    }
    out << to_string(d.severity) << ": " << d.message << " [" << d.check
        << "]\n";
    if (!d.hint.empty()) out << "  fix-it: " << d.hint << '\n';
    for (const std::string& note : d.notes) out << "  note: " << note << '\n';
  }
  out << error_count() << " error(s), " << count(Severity::Warning)
      << " warning(s), " << count(Severity::Note) << " note(s)\n";
}

std::string Report::text() const {
  std::ostringstream out;
  render_text(out);
  return out.str();
}

JsonValue Report::to_json() const {
  JsonValue root = JsonValue::make_object();
  JsonValue list = JsonValue::make_array();
  for (const Diagnostic& d : diagnostics_) {
    JsonValue item = JsonValue::make_object();
    item.set("severity", JsonValue::make_string(to_string(d.severity)));
    item.set("check", JsonValue::make_string(d.check));
    if (!d.file.empty()) item.set("file", JsonValue::make_string(d.file));
    if (d.line > 0) item.set("line", JsonValue::make_number(d.line));
    item.set("message", JsonValue::make_string(d.message));
    if (!d.hint.empty()) item.set("hint", JsonValue::make_string(d.hint));
    if (!d.notes.empty()) {
      JsonValue notes = JsonValue::make_array();
      for (const std::string& note : d.notes)
        notes.push_back(JsonValue::make_string(note));
      item.set("notes", std::move(notes));
    }
    list.push_back(std::move(item));
  }
  root.set("diagnostics", std::move(list));
  JsonValue counts = JsonValue::make_object();
  counts.set("error", JsonValue::make_number(
                          static_cast<double>(count(Severity::Error))));
  counts.set("warning", JsonValue::make_number(
                            static_cast<double>(count(Severity::Warning))));
  counts.set("note", JsonValue::make_number(
                         static_cast<double>(count(Severity::Note))));
  root.set("counts", std::move(counts));
  return root;
}

}  // namespace miro::analysis
