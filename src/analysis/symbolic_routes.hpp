// Layer 3 of the static analyzer: network-wide symbolic route verification.
//
// Where layer 1 lints one configuration and layer 2 checks convergence
// preconditions, this layer answers the paper's routing questions without
// running the simulator: it propagates *sets of admissible routes* per
// (AS, destination) to a fixpoint over the Gao-Rexford partial order and
// evaluates static queries on the result.
//
// The abstract domain has two cooperating layers per node:
//
//   * an exact layer — the node's best (class, length, next-hop) triple,
//     ordered by the Guideline A preference (class rank, then AS-path
//     length, then lowest next-hop AS number). Because (rank, length)
//     strictly increases along every legal export step, the Bellman-Ford
//     style relaxation below converges to the same unique fixpoint the
//     Dijkstra-style StableRouteSolver computes greedily, and chains that
//     revisit a node can never be minimal, so the least fixpoint routes are
//     loop-free without an explicit loop check;
//
//   * a feasibility layer — per route class, the length of the shortest
//     export chain that could deliver a route of that class to the node at
//     all (a may-analysis over the same export relation). This
//     over-approximates what any MIRO negotiation could surface, and is
//     exact for reachability: the conventional export rule is monotone in
//     the class (a better class is always exportable where a worse one is),
//     so a node has a feasible chain iff it is reachable in the stable
//     state.
//
// Fixpoint existence and termination are exactly the layer-2 stability
// preconditions: the customer→provider relation must be acyclic
// (convergence lint's find_provider_cycle), which bounds the length of any
// strictly-improving export chain. preconditions() re-checks this and
// verify drivers refuse to iterate when it fails.
//
// On top of the fixpoint sit the four static queries (reachability,
// avoid-AS feasibility predicting Table 5.2, negotiation admissibility in
// verify.hpp, and export-violation/route-leak detection), each producing
// witness routes in Diagnostic form, plus the correctness centerpiece:
// differential_check() asserts the static predictions bit-match the
// simulated outcomes of StableRouteSolver / AlternatesEngine::avoid_as on
// seeded samples, so any divergence convicts one plane or the other.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "bgp/route_solver.hpp"
#include "common/memtrack.hpp"
#include "core/export_policy.hpp"
#include "topology/as_graph.hpp"

namespace miro::analysis {

using topo::NodeId;

/// Feasibility-layer "no chain of this class" sentinel length.
inline constexpr std::uint32_t kInfeasibleLength = 0xFFFFFFFFu;

/// The fixpoint of one destination: per node, the exact best route plus the
/// per-class feasibility summary. Produced by SymbolicRouteEngine; the
/// accessors mirror bgp::RoutingTree so the two planes compare field by
/// field.
class SymbolicRouteMap {
 public:
  NodeId destination() const { return destination_; }

  // ------------------------------------------------------- exact layer
  bool reachable(NodeId node) const { return entries_[node].reachable; }
  bgp::RouteClass route_class(NodeId node) const { return entries_[node].cls; }
  NodeId next_hop(NodeId node) const { return entries_[node].next_hop; }
  std::uint32_t path_length(NodeId node) const {
    return entries_[node].length;
  }
  /// Full best path [node, ..., destination]; empty when unreachable.
  std::vector<NodeId> path_of(NodeId node) const;
  std::size_t reachable_count() const;

  // ------------------------------------------------- feasibility layer
  /// Could *any* export chain deliver a route of class `cls` to `node`?
  bool feasible(NodeId node, bgp::RouteClass cls) const {
    return entries_[node].feasible_length[bgp::rank(cls)] != kInfeasibleLength;
  }
  /// Any class at all (== stable-state reachability; see header comment).
  bool feasible(NodeId node) const;
  /// Shortest such chain, kInfeasibleLength when none.
  std::uint32_t feasible_length(NodeId node, bgp::RouteClass cls) const {
    return entries_[node].feasible_length[bgp::rank(cls)];
  }

  /// Sweeps the solver needed to stabilize (diagnostic; bounded by the
  /// longest provider chain, not the node count, on real topologies).
  std::size_t sweeps() const { return sweeps_; }

  /// Capacity-walk byte footprint of the per-node state: the
  /// verify.state_bytes bench row.
  std::uint64_t memory_bytes() const { return vector_bytes(entries_); }

 private:
  friend class SymbolicRouteEngine;
  struct Entry {
    NodeId next_hop = topo::kInvalidNode;
    std::uint32_t length = 0;
    bgp::RouteClass cls = bgp::RouteClass::Provider;
    bool reachable = false;
    std::uint32_t feasible_length[4] = {kInfeasibleLength, kInfeasibleLength,
                                        kInfeasibleLength, kInfeasibleLength};
  };
  NodeId destination_ = topo::kInvalidNode;
  std::size_t sweeps_ = 0;
  std::vector<Entry> entries_;
};

struct SymbolicOptions {
  /// Fixpoint sweep bound; 0 means node_count + 2 (any well-formed
  /// hierarchy stabilizes well below it; exceeding it throws).
  std::size_t max_sweeps = 0;
  /// Tests only: deliberately mis-implements the export rule (leaks peer
  /// routes to peers and providers), so the differential harness can prove
  /// it fails loudly on a divergent plane.
  bool inject_export_bug = false;
};

class SymbolicRouteEngine {
 public:
  explicit SymbolicRouteEngine(const topo::AsGraph& graph,
                               SymbolicOptions options = {});

  /// Layer-2 stability preconditions the fixpoint relies on; error findings
  /// mean solve() would not be meaningful (and may not terminate were it
  /// not for the sweep bound).
  Report preconditions(std::string_view label = "") const;

  /// The per-destination fixpoint (throws when the sweep bound is hit).
  SymbolicRouteMap solve(NodeId destination) const;

  /// Fixpoint with `avoid` excised from the graph: the static analogue of
  /// StableRouteSolver::solve_avoiding.
  SymbolicRouteMap solve_avoiding(NodeId destination, NodeId avoid) const;

  /// Static prediction of the Section 5.3 avoid-an-AS procedure: the same
  /// decisions AlternatesEngine::avoid_as takes, evaluated over the
  /// symbolic fixpoint instead of the simulator's routing tree. The
  /// counters mirror AvoidResult so the differential can compare them
  /// field by field.
  struct AvoidPrediction {
    bool success = false;
    bool bgp_success = false;
    std::size_t ases_contacted = 0;
    std::size_t paths_received = 0;
    std::vector<NodeId> witness;  ///< spliced avoiding path when successful
  };
  AvoidPrediction predict_avoid(const SymbolicRouteMap& map, NodeId source,
                                NodeId avoid,
                                core::ExportPolicy policy) const;

  /// The plain-BGP candidate pool at `node` implied by the fixpoint: each
  /// neighbor's best route where the neighbor's conventional export policy
  /// allows it and the path is loop-free, best first (the symbolic twin of
  /// StableRouteSolver::candidates_at).
  std::vector<bgp::Route> candidates_at(const SymbolicRouteMap& map,
                                        NodeId node) const;

  const topo::AsGraph& graph() const { return *graph_; }
  const SymbolicOptions& options() const { return options_; }

 private:
  SymbolicRouteMap fixpoint(NodeId destination, NodeId avoid) const;
  bool export_allows(bgp::RouteClass cls, topo::Relationship to_rel) const;

  const topo::AsGraph* graph_;
  SymbolicOptions options_;
};

/// Network-wide export-violation / route-leak detection: validates every
/// hop of a claimed routing state against the conventional export rule and
/// the classification algebra. Emits error diagnostics
/// (verify.leak.export-violation, verify.leak.class, verify.leak.length,
/// verify.leak.next-hop) with full witness paths. Works on either plane —
/// a symbolic map or a simulator tree — which is what lets the injected-bug
/// test convict the corrupted one.
Report check_export_safety(const topo::AsGraph& graph,
                           const SymbolicRouteMap& map,
                           std::string_view label = "");
Report check_export_safety(const topo::AsGraph& graph,
                           const bgp::RoutingTree& tree,
                           std::string_view label = "");

/// Differential oracle configuration: seeded sampling, mirroring the eval
/// harness's tuple construction.
struct DifferentialOptions {
  std::size_t destination_samples = 6;
  std::size_t sources_per_destination = 6;
  std::uint64_t seed = 1;
  /// Witness diagnostics per check id before summarizing (keeps reports
  /// readable when a plane is badly broken).
  std::size_t max_witnesses = 8;
  SymbolicOptions engine;
};

/// Outcome of one differential round. `report` carries per-divergence
/// witnesses (error severity) plus a summary note; the counters feed the
/// verify.*_agree bench rows.
struct DifferentialOutcome {
  Report report;
  std::size_t destinations = 0;      ///< trees compared
  std::size_t entries = 0;           ///< per-node entry comparisons
  std::size_t tuples = 0;            ///< (source, dest, avoid, policy) checks
  std::size_t entry_mismatches = 0;
  std::size_t avoid_mismatches = 0;

  double entry_agree() const {
    return entries == 0
               ? 1.0
               : 1.0 - static_cast<double>(entry_mismatches) /
                           static_cast<double>(entries);
  }
  double avoid_agree() const {
    return tuples == 0 ? 1.0
                       : 1.0 - static_cast<double>(avoid_mismatches) /
                                   static_cast<double>(tuples);
  }
  bool ok() const { return report.error_count() == 0; }
};

/// Runs the symbolic plane against the simulator plane on seeded samples:
/// per-node tree entries (reachable/class/length/next hop), feasibility
/// consistency, export safety of the simulated trees, poisoned fixpoints
/// vs solve_avoiding, and avoid-AS verdicts (success, bgp_success and the
/// negotiation footprint counters) under all three export policies.
DifferentialOutcome differential_check(const topo::AsGraph& graph,
                                       const DifferentialOptions& options = {},
                                       std::string_view label = "");

}  // namespace miro::analysis
