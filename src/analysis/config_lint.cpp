#include "analysis/config_lint.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace miro::analysis {

namespace {

using policy::AsPathAccessList;
using policy::BgpConfig;
using policy::RouteMapClause;

/// True when the access list can never permit any path: no permit entries
/// at all, or every permit entry is preceded only by denies and has an
/// empty language (first match wins, no match denies).
bool permits_nothing(const AsPathAccessList& list) {
  for (const AsPathAccessList::Entry& entry : list.entries)
    if (entry.permit && !entry.regex.language_empty()) return false;
  return true;
}

void check_acl_reference(Report& report, const BgpConfig& config,
                         std::string_view file, int id, int line,
                         std::string_view context) {
  if (config.access_list(id) != nullptr) return;
  report
      .add(Severity::Error, "policy.acl.undefined",
           std::string(context) + " references as-path access-list " +
               std::to_string(id) + ", which is never defined")
      .at(file, line)
      .fix("add 'ip as-path access-list " + std::to_string(id) +
           " permit <regex>' or fix the referenced id");
}

void lint_route_maps(Report& report, const BgpConfig& config,
                     std::string_view file) {
  // Group clauses by name, preserving first-appearance order.
  std::vector<std::string> names;
  for (const RouteMapClause& clause : config.route_maps)
    if (std::find(names.begin(), names.end(), clause.name) == names.end())
      names.push_back(clause.name);

  for (const std::string& name : names) {
    const auto clauses = config.route_map(name);  // sequence order
    // Duplicate sequence numbers: evaluation order between them is
    // definition order, which is almost never what the operator meant.
    for (std::size_t i = 1; i < clauses.size(); ++i) {
      if (clauses[i]->sequence == clauses[i - 1]->sequence) {
        report
            .add(Severity::Error, "policy.routemap.duplicate-seq",
                 "route-map '" + name + "' defines sequence " +
                     std::to_string(clauses[i]->sequence) + " twice")
            .at(file, clauses[i]->line)
            .fix("renumber one of the clauses")
            .note("previous definition on line " +
                  std::to_string(clauses[i - 1]->line));
      }
    }
    // Shadowing: an unconditional clause (no match statements) matches
    // every route, so every later sequence is unreachable.
    const RouteMapClause* shadower = nullptr;
    for (const RouteMapClause* clause : clauses) {
      if (shadower != nullptr && clause->sequence != shadower->sequence) {
        report
            .add(Severity::Error, "policy.routemap.shadowed",
                 "route-map '" + name + "' sequence " +
                     std::to_string(clause->sequence) +
                     " is unreachable: sequence " +
                     std::to_string(shadower->sequence) +
                     " matches every route")
            .at(file, clause->line)
            .fix("add a match condition to sequence " +
                 std::to_string(shadower->sequence) +
                 " or move this clause before it")
            .note("unconditional clause on line " +
                  std::to_string(shadower->line));
      }
      if (shadower == nullptr && !clause->match_as_path_acl &&
          !clause->match_empty_path_acl) {
        shadower = clause;
      }
    }
    // A `match as-path` against a list that permits nothing can never fire.
    for (const RouteMapClause* clause : clauses) {
      if (!clause->match_as_path_acl) continue;
      const AsPathAccessList* list =
          config.access_list(*clause->match_as_path_acl);
      if (list != nullptr && permits_nothing(*list)) {
        report
            .add(Severity::Warning, "policy.routemap.never-matches",
                 "route-map '" + name + "' sequence " +
                     std::to_string(clause->sequence) +
                     " can never match: access-list " +
                     std::to_string(*clause->match_as_path_acl) +
                     " permits no path")
            .at(file, clause->match_as_path_line)
            .fix("add a permit entry to the access list or drop the clause");
      }
    }
  }

  // References into other tables.
  for (const RouteMapClause& clause : config.route_maps) {
    if (clause.match_as_path_acl)
      check_acl_reference(report, config, file, *clause.match_as_path_acl,
                          clause.match_as_path_line,
                          "'match as-path' in route-map '" + clause.name + "'");
    if (clause.match_empty_path_acl)
      check_acl_reference(report, config, file, *clause.match_empty_path_acl,
                          clause.match_empty_path_line,
                          "'match empty path' in route-map '" + clause.name +
                              "'");
    if (clause.try_negotiation &&
        config.negotiations.find(*clause.try_negotiation) ==
            config.negotiations.end()) {
      report
          .add(Severity::Error, "policy.negotiation.undefined",
               "route-map '" + clause.name + "' tries negotiation '" +
                   *clause.try_negotiation + "', which is never defined")
          .at(file, clause.try_negotiation_line)
          .fix("add a 'negotiation " + *clause.try_negotiation + "' block");
    }
  }

  // Route maps bound to no neighbor silently never run on any session.
  std::set<std::string> bound;
  for (const policy::NeighborBinding& n : config.neighbors) {
    if (n.route_map_in) bound.insert(*n.route_map_in);
    if (n.route_map_out) bound.insert(*n.route_map_out);
  }
  for (const std::string& name : names) {
    if (bound.count(name)) continue;
    const auto clauses = config.route_map(name);
    report
        .add(Severity::Warning, "policy.routemap.unused",
             "route-map '" + name + "' is not applied to any neighbor")
        .at(file, clauses.front()->line)
        .fix("bind it with 'neighbor <ip> route-map " + name +
             " in|out' or remove it");
  }
  for (const policy::NeighborBinding& n : config.neighbors) {
    const auto check_binding = [&](const std::optional<std::string>& name,
                                   int line, const char* direction) {
      if (!name) return;
      if (std::find(names.begin(), names.end(), *name) != names.end()) return;
      report
          .add(Severity::Error, "policy.routemap.undefined",
               std::string("neighbor applies ") + direction + " route-map '" +
                   *name + "', which is never defined")
          .at(file, line)
          .fix("define 'route-map " + *name + " permit ...'");
    };
    check_binding(n.route_map_in, n.route_map_in_line, "inbound");
    check_binding(n.route_map_out, n.route_map_out_line, "outbound");
  }
}

void lint_access_lists(Report& report, const BgpConfig& config,
                       std::string_view file) {
  std::set<int> referenced;
  for (const RouteMapClause& clause : config.route_maps) {
    if (clause.match_as_path_acl) referenced.insert(*clause.match_as_path_acl);
    if (clause.match_empty_path_acl)
      referenced.insert(*clause.match_empty_path_acl);
  }
  for (const auto& [id, list] : config.access_lists) {
    if (!referenced.count(id)) {
      report
          .add(Severity::Warning, "policy.acl.unused",
               "as-path access-list " + std::to_string(id) +
                   " is never referenced by a route-map")
          .at(file, list.entries.empty() ? 0 : list.entries.front().line)
          .fix("reference it with 'match as-path " + std::to_string(id) +
               "' or remove it");
    }
    for (const AsPathAccessList::Entry& entry : list.entries) {
      if (!entry.regex.language_empty()) continue;
      report
          .add(Severity::Error, "policy.regex.empty",
               "as-path regex '" + entry.regex.pattern() +
                   "' can never match any AS path")
          .at(file, entry.line)
          .fix("the pattern's language is empty over rendered AS paths; "
               "check for anchors that contradict required characters or a "
               "character class containing no digits");
    }
  }
}

void lint_negotiations(Report& report, const BgpConfig& config,
                       std::string_view file) {
  std::set<std::string> tried;
  for (const RouteMapClause& clause : config.route_maps)
    if (clause.try_negotiation) tried.insert(*clause.try_negotiation);
  for (const auto& [name, spec] : config.negotiations) {
    if (!tried.count(name)) {
      report
          .add(Severity::Warning, "policy.negotiation.unused",
               "negotiation '" + name +
                   "' is never started by a 'try negotiation' statement")
          .at(file, spec.line)
          .fix("reference it from a route-map or remove the block");
    }
    if (spec.target_path_regex && spec.target_path_regex->language_empty()) {
      report
          .add(Severity::Error, "policy.regex.empty",
               "negotiation '" + name + "' target regex '" +
                   spec.target_path_regex->pattern() +
                   "' can never match any AS path")
          .at(file, spec.target_path_line)
          .fix("an unmatchable 'match all path' pattern selects no targets, "
               "so the negotiation can never contact anyone");
    }
  }
}

void lint_responder(Report& report, const BgpConfig& config,
                    std::string_view file) {
  if (!config.responder) return;
  const policy::ResponderSpec& responder = *config.responder;
  if (responder.max_tunnels && *responder.max_tunnels == 0) {
    report
        .add(Severity::Error, "policy.responder.never-admits",
             "'when tunnel_number < 0' can never admit a negotiation")
        .at(file, responder.when_line)
        .fix("raise the tunnel_number bound or drop the 'accept "
             "negotiation' block");
  }
  // Ordered first-match pricing: a filter whose threshold is >= an earlier
  // one can never fire (any local-pref above it also clears the earlier
  // threshold first).
  for (std::size_t j = 1; j < responder.filters.size(); ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      if (responder.filters[j].local_pref_greater >=
          responder.filters[i].local_pref_greater) {
        report
            .add(Severity::Warning, "policy.responder.filter-shadowed",
                 "negotiation filter with threshold local_pref > " +
                     std::to_string(responder.filters[j].local_pref_greater) +
                     " is unreachable behind the earlier threshold > " +
                     std::to_string(responder.filters[i].local_pref_greater))
            .at(file, responder.filters[j].line)
            .fix("order filters by descending threshold")
            .note("shadowing filter on line " +
                  std::to_string(responder.filters[i].line));
        break;
      }
    }
  }
}

}  // namespace

Report lint_config(const policy::BgpConfig& config, std::string_view file) {
  Report report;
  if (!config.local_as) {
    report
        .add(Severity::Note, "policy.router.missing",
             "configuration declares no 'router bgp <asn>' statement")
        .at(file, 0);
  }
  lint_route_maps(report, config, file);
  lint_access_lists(report, config, file);
  lint_negotiations(report, config, file);
  lint_responder(report, config, file);
  report.sort();
  return report;
}

}  // namespace miro::analysis
