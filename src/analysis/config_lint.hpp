// Layer 1 of the static analyzer: semantic checks over a parsed
// policy::BgpConfig (the Chapter 6 extended route-map language).
//
// The parser rejects syntactically malformed statements; these checks find
// configurations that parse but cannot mean what the operator intended:
// references to access lists or negotiations that are never defined,
// route-map sequences no route can ever reach, AS-path regexes whose
// language is empty, and responder blocks that can never admit a
// negotiation. The check-id catalog lives in DESIGN.md §9.
#pragma once

#include <string_view>

#include "analysis/diagnostics.hpp"
#include "policy/policy_config.hpp"

namespace miro::analysis {

/// Lints one parsed configuration. `file` labels the diagnostics (the
/// config's path, or a synthetic name for in-memory configs).
Report lint_config(const policy::BgpConfig& config, std::string_view file = "");

}  // namespace miro::analysis
