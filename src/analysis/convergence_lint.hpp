// Layer 2 of the static analyzer: convergence-safety checks over an
// instantiated (topology, policy) system — the relationship-annotated AS
// graph, the destination prefixes, and the per-AS MIRO options (guideline
// assignment, tunnel specifications, Guideline D's partial order).
//
// The checks encode Chapter 7's safety conditions so an unsafe system is
// caught without paying the simulation cost of running it to divergence:
//
//   * Gao-Rexford Guideline A preconditions: the customer-provider relation
//     must be acyclic (no AS is its own indirect provider), and tunnels that
//     a None/strict-policy AS would re-advertise as BGP routes must not
//     contain a valley (the route class only reflects the first link, so a
//     valley hides from the conventional export rule).
//   * Guideline D: the declared ≺ relation must be a genuine strict partial
//     order — we verify irreflexivity and acyclicity (any acyclic relation
//     extends to a strict partial order; a cycle cannot).
//   * Guideline E: a tunnel whose carrier is another of the speaker's own
//     tunnels can never establish under E's no-tunnel-over-tunnel rule.
//   * Dispute wheel: a cyclic chain of tunnels that invalidate one another
//     (the static analogue of Griffin's dispute wheel, specialised to the
//     MIRO model) is reported with its witness — the pivot ASes and the rim
//     paths — exactly what oscillates on the Figure 7.1 / 7.2 gadgets.
//
// The detector is conservative the way the chapter's theorems are: edges
// that a guideline provably neutralises (B/C tunnels ride pure BGP routes;
// E serialises a speaker's own tunnels; D's order gates establishment) are
// not counted, so guideline-compliant systems lint clean while None/strict
// gadgets produce a concrete wheel.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "convergence/model.hpp"
#include "topology/as_graph.hpp"

namespace miro::analysis {

/// Guideline A's structural precondition, exposed for reuse by the layer-3
/// symbolic engine: a cycle in the customer→provider relation, if any — a
/// chain of ASes each of which is a provider of the previous one, returning
/// to the start (first element repeated at the end). nullopt when the
/// hierarchy is acyclic, i.e. the stable state exists and every fixpoint
/// below terminates.
std::optional<std::vector<topo::NodeId>> find_provider_cycle(
    const topo::AsGraph& graph);

/// Lints a full MIRO system. `label` names the system in diagnostics (e.g.
/// "fig7.1:none" or a topology file path).
Report lint_system(const topo::AsGraph& graph,
                   const std::vector<topo::NodeId>& destinations,
                   const conv::ModelOptions& options,
                   std::string_view label = "");

/// Structural subset when only a topology is available (no tunnels, no
/// guideline annotations): Guideline A's provider-cycle check.
Report lint_topology(const topo::AsGraph& graph, std::string_view label = "");

}  // namespace miro::analysis
