# Empty compiler generated dependencies file for bench_table_5_2_avoid_success.
# This may be replaced when dependencies are built.
