file(REMOVE_RECURSE
  "../bench/bench_table_5_2_avoid_success"
  "../bench/bench_table_5_2_avoid_success.pdb"
  "CMakeFiles/bench_table_5_2_avoid_success.dir/bench_table_5_2_avoid_success.cpp.o"
  "CMakeFiles/bench_table_5_2_avoid_success.dir/bench_table_5_2_avoid_success.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_5_2_avoid_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
