# Empty compiler generated dependencies file for bench_fig_5_1_degree_distribution.
# This may be replaced when dependencies are built.
