file(REMOVE_RECURSE
  "../bench/bench_fig_5_1_degree_distribution"
  "../bench/bench_fig_5_1_degree_distribution.pdb"
  "CMakeFiles/bench_fig_5_1_degree_distribution.dir/bench_fig_5_1_degree_distribution.cpp.o"
  "CMakeFiles/bench_fig_5_1_degree_distribution.dir/bench_fig_5_1_degree_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_5_1_degree_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
