# Empty compiler generated dependencies file for bench_fig_5_6_5_7_traffic_control.
# This may be replaced when dependencies are built.
