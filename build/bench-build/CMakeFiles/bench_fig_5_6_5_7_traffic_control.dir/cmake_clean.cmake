file(REMOVE_RECURSE
  "../bench/bench_fig_5_6_5_7_traffic_control"
  "../bench/bench_fig_5_6_5_7_traffic_control.pdb"
  "CMakeFiles/bench_fig_5_6_5_7_traffic_control.dir/bench_fig_5_6_5_7_traffic_control.cpp.o"
  "CMakeFiles/bench_fig_5_6_5_7_traffic_control.dir/bench_fig_5_6_5_7_traffic_control.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_5_6_5_7_traffic_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
