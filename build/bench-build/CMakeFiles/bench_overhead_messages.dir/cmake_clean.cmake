file(REMOVE_RECURSE
  "../bench/bench_overhead_messages"
  "../bench/bench_overhead_messages.pdb"
  "CMakeFiles/bench_overhead_messages.dir/bench_overhead_messages.cpp.o"
  "CMakeFiles/bench_overhead_messages.dir/bench_overhead_messages.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
