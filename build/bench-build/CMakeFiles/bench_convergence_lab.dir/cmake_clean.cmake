file(REMOVE_RECURSE
  "../bench/bench_convergence_lab"
  "../bench/bench_convergence_lab.pdb"
  "CMakeFiles/bench_convergence_lab.dir/bench_convergence_lab.cpp.o"
  "CMakeFiles/bench_convergence_lab.dir/bench_convergence_lab.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_convergence_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
