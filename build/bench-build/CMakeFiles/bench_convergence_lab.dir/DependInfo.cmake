
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_convergence_lab.cpp" "bench-build/CMakeFiles/bench_convergence_lab.dir/bench_convergence_lab.cpp.o" "gcc" "bench-build/CMakeFiles/bench_convergence_lab.dir/bench_convergence_lab.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/convergence/CMakeFiles/miro_convergence.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/miro_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/miro_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/miro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/miro_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/miro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
