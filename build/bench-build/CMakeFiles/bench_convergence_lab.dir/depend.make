# Empty dependencies file for bench_convergence_lab.
# This may be replaced when dependencies are built.
