file(REMOVE_RECURSE
  "../bench/bench_table_5_3_negotiation_state"
  "../bench/bench_table_5_3_negotiation_state.pdb"
  "CMakeFiles/bench_table_5_3_negotiation_state.dir/bench_table_5_3_negotiation_state.cpp.o"
  "CMakeFiles/bench_table_5_3_negotiation_state.dir/bench_table_5_3_negotiation_state.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_5_3_negotiation_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
