# Empty compiler generated dependencies file for bench_table_5_3_negotiation_state.
# This may be replaced when dependencies are built.
