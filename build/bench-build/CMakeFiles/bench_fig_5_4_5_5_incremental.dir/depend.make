# Empty dependencies file for bench_fig_5_4_5_5_incremental.
# This may be replaced when dependencies are built.
