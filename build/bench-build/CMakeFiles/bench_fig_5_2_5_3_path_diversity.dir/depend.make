# Empty dependencies file for bench_fig_5_2_5_3_path_diversity.
# This may be replaced when dependencies are built.
