file(REMOVE_RECURSE
  "../bench/bench_inference_accuracy"
  "../bench/bench_inference_accuracy.pdb"
  "CMakeFiles/bench_inference_accuracy.dir/bench_inference_accuracy.cpp.o"
  "CMakeFiles/bench_inference_accuracy.dir/bench_inference_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inference_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
