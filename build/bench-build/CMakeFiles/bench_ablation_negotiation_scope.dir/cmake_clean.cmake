file(REMOVE_RECURSE
  "../bench/bench_ablation_negotiation_scope"
  "../bench/bench_ablation_negotiation_scope.pdb"
  "CMakeFiles/bench_ablation_negotiation_scope.dir/bench_ablation_negotiation_scope.cpp.o"
  "CMakeFiles/bench_ablation_negotiation_scope.dir/bench_ablation_negotiation_scope.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_negotiation_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
