# Empty dependencies file for bench_ablation_negotiation_scope.
# This may be replaced when dependencies are built.
