# Empty dependencies file for bench_ablation_te_mechanisms.
# This may be replaced when dependencies are built.
