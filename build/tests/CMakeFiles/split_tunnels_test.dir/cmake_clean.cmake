file(REMOVE_RECURSE
  "CMakeFiles/split_tunnels_test.dir/split_tunnels_test.cpp.o"
  "CMakeFiles/split_tunnels_test.dir/split_tunnels_test.cpp.o.d"
  "split_tunnels_test"
  "split_tunnels_test.pdb"
  "split_tunnels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_tunnels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
