file(REMOVE_RECURSE
  "CMakeFiles/failure_sweep_test.dir/failure_sweep_test.cpp.o"
  "CMakeFiles/failure_sweep_test.dir/failure_sweep_test.cpp.o.d"
  "failure_sweep_test"
  "failure_sweep_test.pdb"
  "failure_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
