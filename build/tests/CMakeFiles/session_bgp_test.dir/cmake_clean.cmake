file(REMOVE_RECURSE
  "CMakeFiles/session_bgp_test.dir/session_bgp_test.cpp.o"
  "CMakeFiles/session_bgp_test.dir/session_bgp_test.cpp.o.d"
  "session_bgp_test"
  "session_bgp_test.pdb"
  "session_bgp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_bgp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
