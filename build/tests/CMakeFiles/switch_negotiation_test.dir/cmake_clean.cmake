file(REMOVE_RECURSE
  "CMakeFiles/switch_negotiation_test.dir/switch_negotiation_test.cpp.o"
  "CMakeFiles/switch_negotiation_test.dir/switch_negotiation_test.cpp.o.d"
  "switch_negotiation_test"
  "switch_negotiation_test.pdb"
  "switch_negotiation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_negotiation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
