# Empty dependencies file for switch_negotiation_test.
# This may be replaced when dependencies are built.
