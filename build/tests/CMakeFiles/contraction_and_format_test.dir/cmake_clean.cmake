file(REMOVE_RECURSE
  "CMakeFiles/contraction_and_format_test.dir/contraction_and_format_test.cpp.o"
  "CMakeFiles/contraction_and_format_test.dir/contraction_and_format_test.cpp.o.d"
  "contraction_and_format_test"
  "contraction_and_format_test.pdb"
  "contraction_and_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contraction_and_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
