# Empty dependencies file for contraction_and_format_test.
# This may be replaced when dependencies are built.
