file(REMOVE_RECURSE
  "CMakeFiles/rcp_test.dir/rcp_test.cpp.o"
  "CMakeFiles/rcp_test.dir/rcp_test.cpp.o.d"
  "rcp_test"
  "rcp_test.pdb"
  "rcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
