# Empty dependencies file for gao_rexford_test.
# This may be replaced when dependencies are built.
