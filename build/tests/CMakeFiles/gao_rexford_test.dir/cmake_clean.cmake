file(REMOVE_RECURSE
  "CMakeFiles/gao_rexford_test.dir/gao_rexford_test.cpp.o"
  "CMakeFiles/gao_rexford_test.dir/gao_rexford_test.cpp.o.d"
  "gao_rexford_test"
  "gao_rexford_test.pdb"
  "gao_rexford_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gao_rexford_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
