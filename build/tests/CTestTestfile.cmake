# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/bgp_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/dataplane_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/convergence_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/session_bgp_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/contraction_and_format_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_test[1]_include.cmake")
include("/root/repo/build/tests/rcp_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/split_tunnels_test[1]_include.cmake")
include("/root/repo/build/tests/failure_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/switch_negotiation_test[1]_include.cmake")
include("/root/repo/build/tests/gao_rexford_test[1]_include.cmake")
