# Empty dependencies file for miro_bgp.
# This may be replaced when dependencies are built.
