
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/decision_process.cpp" "src/bgp/CMakeFiles/miro_bgp.dir/decision_process.cpp.o" "gcc" "src/bgp/CMakeFiles/miro_bgp.dir/decision_process.cpp.o.d"
  "/root/repo/src/bgp/gao_rexford.cpp" "src/bgp/CMakeFiles/miro_bgp.dir/gao_rexford.cpp.o" "gcc" "src/bgp/CMakeFiles/miro_bgp.dir/gao_rexford.cpp.o.d"
  "/root/repo/src/bgp/path_vector_engine.cpp" "src/bgp/CMakeFiles/miro_bgp.dir/path_vector_engine.cpp.o" "gcc" "src/bgp/CMakeFiles/miro_bgp.dir/path_vector_engine.cpp.o.d"
  "/root/repo/src/bgp/route.cpp" "src/bgp/CMakeFiles/miro_bgp.dir/route.cpp.o" "gcc" "src/bgp/CMakeFiles/miro_bgp.dir/route.cpp.o.d"
  "/root/repo/src/bgp/route_solver.cpp" "src/bgp/CMakeFiles/miro_bgp.dir/route_solver.cpp.o" "gcc" "src/bgp/CMakeFiles/miro_bgp.dir/route_solver.cpp.o.d"
  "/root/repo/src/bgp/router_level.cpp" "src/bgp/CMakeFiles/miro_bgp.dir/router_level.cpp.o" "gcc" "src/bgp/CMakeFiles/miro_bgp.dir/router_level.cpp.o.d"
  "/root/repo/src/bgp/session_bgp.cpp" "src/bgp/CMakeFiles/miro_bgp.dir/session_bgp.cpp.o" "gcc" "src/bgp/CMakeFiles/miro_bgp.dir/session_bgp.cpp.o.d"
  "/root/repo/src/bgp/table_format.cpp" "src/bgp/CMakeFiles/miro_bgp.dir/table_format.cpp.o" "gcc" "src/bgp/CMakeFiles/miro_bgp.dir/table_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/miro_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/miro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/miro_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/miro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
