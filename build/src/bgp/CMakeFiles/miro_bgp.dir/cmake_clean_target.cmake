file(REMOVE_RECURSE
  "libmiro_bgp.a"
)
