file(REMOVE_RECURSE
  "CMakeFiles/miro_bgp.dir/decision_process.cpp.o"
  "CMakeFiles/miro_bgp.dir/decision_process.cpp.o.d"
  "CMakeFiles/miro_bgp.dir/gao_rexford.cpp.o"
  "CMakeFiles/miro_bgp.dir/gao_rexford.cpp.o.d"
  "CMakeFiles/miro_bgp.dir/path_vector_engine.cpp.o"
  "CMakeFiles/miro_bgp.dir/path_vector_engine.cpp.o.d"
  "CMakeFiles/miro_bgp.dir/route.cpp.o"
  "CMakeFiles/miro_bgp.dir/route.cpp.o.d"
  "CMakeFiles/miro_bgp.dir/route_solver.cpp.o"
  "CMakeFiles/miro_bgp.dir/route_solver.cpp.o.d"
  "CMakeFiles/miro_bgp.dir/router_level.cpp.o"
  "CMakeFiles/miro_bgp.dir/router_level.cpp.o.d"
  "CMakeFiles/miro_bgp.dir/session_bgp.cpp.o"
  "CMakeFiles/miro_bgp.dir/session_bgp.cpp.o.d"
  "CMakeFiles/miro_bgp.dir/table_format.cpp.o"
  "CMakeFiles/miro_bgp.dir/table_format.cpp.o.d"
  "libmiro_bgp.a"
  "libmiro_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miro_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
