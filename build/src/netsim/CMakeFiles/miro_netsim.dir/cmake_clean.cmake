file(REMOVE_RECURSE
  "CMakeFiles/miro_netsim.dir/scheduler.cpp.o"
  "CMakeFiles/miro_netsim.dir/scheduler.cpp.o.d"
  "libmiro_netsim.a"
  "libmiro_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miro_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
