# Empty dependencies file for miro_netsim.
# This may be replaced when dependencies are built.
