file(REMOVE_RECURSE
  "libmiro_netsim.a"
)
