file(REMOVE_RECURSE
  "libmiro_net.a"
)
