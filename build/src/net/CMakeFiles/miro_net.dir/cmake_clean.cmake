file(REMOVE_RECURSE
  "CMakeFiles/miro_net.dir/address.cpp.o"
  "CMakeFiles/miro_net.dir/address.cpp.o.d"
  "CMakeFiles/miro_net.dir/packet.cpp.o"
  "CMakeFiles/miro_net.dir/packet.cpp.o.d"
  "libmiro_net.a"
  "libmiro_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miro_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
