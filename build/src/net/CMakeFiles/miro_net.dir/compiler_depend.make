# Empty compiler generated dependencies file for miro_net.
# This may be replaced when dependencies are built.
