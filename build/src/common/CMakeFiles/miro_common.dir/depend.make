# Empty dependencies file for miro_common.
# This may be replaced when dependencies are built.
