file(REMOVE_RECURSE
  "libmiro_common.a"
)
