file(REMOVE_RECURSE
  "CMakeFiles/miro_common.dir/rng.cpp.o"
  "CMakeFiles/miro_common.dir/rng.cpp.o.d"
  "CMakeFiles/miro_common.dir/stats.cpp.o"
  "CMakeFiles/miro_common.dir/stats.cpp.o.d"
  "CMakeFiles/miro_common.dir/strings.cpp.o"
  "CMakeFiles/miro_common.dir/strings.cpp.o.d"
  "CMakeFiles/miro_common.dir/table.cpp.o"
  "CMakeFiles/miro_common.dir/table.cpp.o.d"
  "libmiro_common.a"
  "libmiro_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miro_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
