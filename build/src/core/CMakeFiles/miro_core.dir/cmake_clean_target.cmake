file(REMOVE_RECURSE
  "libmiro_core.a"
)
