# Empty compiler generated dependencies file for miro_core.
# This may be replaced when dependencies are built.
