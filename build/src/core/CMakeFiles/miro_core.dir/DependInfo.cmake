
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alternates.cpp" "src/core/CMakeFiles/miro_core.dir/alternates.cpp.o" "gcc" "src/core/CMakeFiles/miro_core.dir/alternates.cpp.o.d"
  "/root/repo/src/core/export_policy.cpp" "src/core/CMakeFiles/miro_core.dir/export_policy.cpp.o" "gcc" "src/core/CMakeFiles/miro_core.dir/export_policy.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/core/CMakeFiles/miro_core.dir/protocol.cpp.o" "gcc" "src/core/CMakeFiles/miro_core.dir/protocol.cpp.o.d"
  "/root/repo/src/core/tunnel.cpp" "src/core/CMakeFiles/miro_core.dir/tunnel.cpp.o" "gcc" "src/core/CMakeFiles/miro_core.dir/tunnel.cpp.o.d"
  "/root/repo/src/core/tunnel_monitor.cpp" "src/core/CMakeFiles/miro_core.dir/tunnel_monitor.cpp.o" "gcc" "src/core/CMakeFiles/miro_core.dir/tunnel_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/miro_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/miro_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/miro_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/miro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/miro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
