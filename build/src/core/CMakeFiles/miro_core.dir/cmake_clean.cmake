file(REMOVE_RECURSE
  "CMakeFiles/miro_core.dir/alternates.cpp.o"
  "CMakeFiles/miro_core.dir/alternates.cpp.o.d"
  "CMakeFiles/miro_core.dir/export_policy.cpp.o"
  "CMakeFiles/miro_core.dir/export_policy.cpp.o.d"
  "CMakeFiles/miro_core.dir/protocol.cpp.o"
  "CMakeFiles/miro_core.dir/protocol.cpp.o.d"
  "CMakeFiles/miro_core.dir/tunnel.cpp.o"
  "CMakeFiles/miro_core.dir/tunnel.cpp.o.d"
  "CMakeFiles/miro_core.dir/tunnel_monitor.cpp.o"
  "CMakeFiles/miro_core.dir/tunnel_monitor.cpp.o.d"
  "libmiro_core.a"
  "libmiro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
