file(REMOVE_RECURSE
  "libmiro_convergence.a"
)
