# Empty compiler generated dependencies file for miro_convergence.
# This may be replaced when dependencies are built.
