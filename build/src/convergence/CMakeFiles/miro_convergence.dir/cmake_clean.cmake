file(REMOVE_RECURSE
  "CMakeFiles/miro_convergence.dir/gadgets.cpp.o"
  "CMakeFiles/miro_convergence.dir/gadgets.cpp.o.d"
  "CMakeFiles/miro_convergence.dir/model.cpp.o"
  "CMakeFiles/miro_convergence.dir/model.cpp.o.d"
  "libmiro_convergence.a"
  "libmiro_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miro_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
