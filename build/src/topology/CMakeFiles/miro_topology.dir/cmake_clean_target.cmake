file(REMOVE_RECURSE
  "libmiro_topology.a"
)
