file(REMOVE_RECURSE
  "CMakeFiles/miro_topology.dir/as_graph.cpp.o"
  "CMakeFiles/miro_topology.dir/as_graph.cpp.o.d"
  "CMakeFiles/miro_topology.dir/generator.cpp.o"
  "CMakeFiles/miro_topology.dir/generator.cpp.o.d"
  "CMakeFiles/miro_topology.dir/inference.cpp.o"
  "CMakeFiles/miro_topology.dir/inference.cpp.o.d"
  "CMakeFiles/miro_topology.dir/metrics.cpp.o"
  "CMakeFiles/miro_topology.dir/metrics.cpp.o.d"
  "CMakeFiles/miro_topology.dir/serialization.cpp.o"
  "CMakeFiles/miro_topology.dir/serialization.cpp.o.d"
  "CMakeFiles/miro_topology.dir/sibling_contraction.cpp.o"
  "CMakeFiles/miro_topology.dir/sibling_contraction.cpp.o.d"
  "libmiro_topology.a"
  "libmiro_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miro_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
