
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/as_graph.cpp" "src/topology/CMakeFiles/miro_topology.dir/as_graph.cpp.o" "gcc" "src/topology/CMakeFiles/miro_topology.dir/as_graph.cpp.o.d"
  "/root/repo/src/topology/generator.cpp" "src/topology/CMakeFiles/miro_topology.dir/generator.cpp.o" "gcc" "src/topology/CMakeFiles/miro_topology.dir/generator.cpp.o.d"
  "/root/repo/src/topology/inference.cpp" "src/topology/CMakeFiles/miro_topology.dir/inference.cpp.o" "gcc" "src/topology/CMakeFiles/miro_topology.dir/inference.cpp.o.d"
  "/root/repo/src/topology/metrics.cpp" "src/topology/CMakeFiles/miro_topology.dir/metrics.cpp.o" "gcc" "src/topology/CMakeFiles/miro_topology.dir/metrics.cpp.o.d"
  "/root/repo/src/topology/serialization.cpp" "src/topology/CMakeFiles/miro_topology.dir/serialization.cpp.o" "gcc" "src/topology/CMakeFiles/miro_topology.dir/serialization.cpp.o.d"
  "/root/repo/src/topology/sibling_contraction.cpp" "src/topology/CMakeFiles/miro_topology.dir/sibling_contraction.cpp.o" "gcc" "src/topology/CMakeFiles/miro_topology.dir/sibling_contraction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/miro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/miro_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
