# Empty compiler generated dependencies file for miro_topology.
# This may be replaced when dependencies are built.
