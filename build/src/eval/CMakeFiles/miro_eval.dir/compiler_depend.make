# Empty compiler generated dependencies file for miro_eval.
# This may be replaced when dependencies are built.
