file(REMOVE_RECURSE
  "libmiro_eval.a"
)
