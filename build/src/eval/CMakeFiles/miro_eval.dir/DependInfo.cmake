
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/avoid_as.cpp" "src/eval/CMakeFiles/miro_eval.dir/avoid_as.cpp.o" "gcc" "src/eval/CMakeFiles/miro_eval.dir/avoid_as.cpp.o.d"
  "/root/repo/src/eval/dataset_report.cpp" "src/eval/CMakeFiles/miro_eval.dir/dataset_report.cpp.o" "gcc" "src/eval/CMakeFiles/miro_eval.dir/dataset_report.cpp.o.d"
  "/root/repo/src/eval/experiments.cpp" "src/eval/CMakeFiles/miro_eval.dir/experiments.cpp.o" "gcc" "src/eval/CMakeFiles/miro_eval.dir/experiments.cpp.o.d"
  "/root/repo/src/eval/path_diversity.cpp" "src/eval/CMakeFiles/miro_eval.dir/path_diversity.cpp.o" "gcc" "src/eval/CMakeFiles/miro_eval.dir/path_diversity.cpp.o.d"
  "/root/repo/src/eval/te_comparison.cpp" "src/eval/CMakeFiles/miro_eval.dir/te_comparison.cpp.o" "gcc" "src/eval/CMakeFiles/miro_eval.dir/te_comparison.cpp.o.d"
  "/root/repo/src/eval/traffic_control.cpp" "src/eval/CMakeFiles/miro_eval.dir/traffic_control.cpp.o" "gcc" "src/eval/CMakeFiles/miro_eval.dir/traffic_control.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/miro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/miro_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/miro_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/miro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/miro_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/miro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
