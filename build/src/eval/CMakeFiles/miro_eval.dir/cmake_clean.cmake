file(REMOVE_RECURSE
  "CMakeFiles/miro_eval.dir/avoid_as.cpp.o"
  "CMakeFiles/miro_eval.dir/avoid_as.cpp.o.d"
  "CMakeFiles/miro_eval.dir/dataset_report.cpp.o"
  "CMakeFiles/miro_eval.dir/dataset_report.cpp.o.d"
  "CMakeFiles/miro_eval.dir/experiments.cpp.o"
  "CMakeFiles/miro_eval.dir/experiments.cpp.o.d"
  "CMakeFiles/miro_eval.dir/path_diversity.cpp.o"
  "CMakeFiles/miro_eval.dir/path_diversity.cpp.o.d"
  "CMakeFiles/miro_eval.dir/te_comparison.cpp.o"
  "CMakeFiles/miro_eval.dir/te_comparison.cpp.o.d"
  "CMakeFiles/miro_eval.dir/traffic_control.cpp.o"
  "CMakeFiles/miro_eval.dir/traffic_control.cpp.o.d"
  "libmiro_eval.a"
  "libmiro_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miro_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
