file(REMOVE_RECURSE
  "CMakeFiles/miro_policy.dir/aspath_regex.cpp.o"
  "CMakeFiles/miro_policy.dir/aspath_regex.cpp.o.d"
  "CMakeFiles/miro_policy.dir/policy_config.cpp.o"
  "CMakeFiles/miro_policy.dir/policy_config.cpp.o.d"
  "CMakeFiles/miro_policy.dir/policy_engine.cpp.o"
  "CMakeFiles/miro_policy.dir/policy_engine.cpp.o.d"
  "libmiro_policy.a"
  "libmiro_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miro_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
