file(REMOVE_RECURSE
  "libmiro_policy.a"
)
