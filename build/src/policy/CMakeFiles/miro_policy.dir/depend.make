# Empty dependencies file for miro_policy.
# This may be replaced when dependencies are built.
