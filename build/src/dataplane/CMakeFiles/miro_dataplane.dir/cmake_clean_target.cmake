file(REMOVE_RECURSE
  "libmiro_dataplane.a"
)
