# Empty dependencies file for miro_dataplane.
# This may be replaced when dependencies are built.
