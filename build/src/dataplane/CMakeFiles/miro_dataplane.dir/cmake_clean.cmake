file(REMOVE_RECURSE
  "CMakeFiles/miro_dataplane.dir/classifier.cpp.o"
  "CMakeFiles/miro_dataplane.dir/classifier.cpp.o.d"
  "CMakeFiles/miro_dataplane.dir/encapsulation.cpp.o"
  "CMakeFiles/miro_dataplane.dir/encapsulation.cpp.o.d"
  "CMakeFiles/miro_dataplane.dir/forwarding.cpp.o"
  "CMakeFiles/miro_dataplane.dir/forwarding.cpp.o.d"
  "CMakeFiles/miro_dataplane.dir/rcp.cpp.o"
  "CMakeFiles/miro_dataplane.dir/rcp.cpp.o.d"
  "libmiro_dataplane.a"
  "libmiro_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miro_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
