file(REMOVE_RECURSE
  "CMakeFiles/convergence_tour.dir/convergence_tour.cpp.o"
  "CMakeFiles/convergence_tour.dir/convergence_tour.cpp.o.d"
  "convergence_tour"
  "convergence_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convergence_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
