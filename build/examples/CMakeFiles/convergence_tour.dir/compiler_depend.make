# Empty compiler generated dependencies file for convergence_tour.
# This may be replaced when dependencies are built.
