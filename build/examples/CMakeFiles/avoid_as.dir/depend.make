# Empty dependencies file for avoid_as.
# This may be replaced when dependencies are built.
