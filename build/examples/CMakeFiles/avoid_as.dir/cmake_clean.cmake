file(REMOVE_RECURSE
  "CMakeFiles/avoid_as.dir/avoid_as.cpp.o"
  "CMakeFiles/avoid_as.dir/avoid_as.cpp.o.d"
  "avoid_as"
  "avoid_as.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avoid_as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
