# Empty dependencies file for bgp_dynamics.
# This may be replaced when dependencies are built.
