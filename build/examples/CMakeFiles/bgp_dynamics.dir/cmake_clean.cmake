file(REMOVE_RECURSE
  "CMakeFiles/bgp_dynamics.dir/bgp_dynamics.cpp.o"
  "CMakeFiles/bgp_dynamics.dir/bgp_dynamics.cpp.o.d"
  "bgp_dynamics"
  "bgp_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
