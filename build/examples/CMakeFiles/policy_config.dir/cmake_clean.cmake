file(REMOVE_RECURSE
  "CMakeFiles/policy_config.dir/policy_config.cpp.o"
  "CMakeFiles/policy_config.dir/policy_config.cpp.o.d"
  "policy_config"
  "policy_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
