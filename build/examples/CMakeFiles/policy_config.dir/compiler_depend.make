# Empty compiler generated dependencies file for policy_config.
# This may be replaced when dependencies are built.
