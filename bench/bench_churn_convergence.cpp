// Convergence under sustained churn, and what the defenses buy.
//
// Two workloads per topology profile:
//   - a seeded mixed churn trace (link flaps, session resets, prefix flaps,
//     hijack-and-recover): per-burst convergence-time distribution and
//     message cost, with the online invariant checker auditing every
//     checkpoint (any violation is reported as a nonzero row);
//   - a persistent single-link flapper: network-wide UPDATE traffic with the
//     MRAI + flap-damping defenses off vs on — the suppression ratio the
//     damping design must pay for itself on.
// All rows are pure simulation results (deterministic for a given seed), so
// the suite snapshot stays byte-comparable across thread counts — except the
// monitoring-overhead pair, which times the same mixed replay with the
// route-event provenance recorder off vs on (wall-clock "ms" rows, gated by
// the regression threshold like every other timing).
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "churn/replayer.hpp"
#include "common/table.hpp"
#include "obs/metrics.hpp"
#include "obs/ribmon.hpp"
#include "topology/generator.hpp"

namespace {

std::string fixed2(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.2f", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  try {
  using namespace miro;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::BenchJsonWriter json = args.json_writer();
  obs::ProfileRegistry prof;
  obs::set_profile(&prof);
  obs::MemoryRegistry mem;
  obs::set_memory(&mem);
  json.set_profile(&prof);
  json.set_memory(&mem);

  TextTable table({"profile", "ASes", "bursts", "conv p50", "conv p90",
                   "msgs/burst", "flap msgs off", "flap msgs on",
                   "suppression", "rib records", "violations"});
  for (const std::string& profile_name : args.profiles) {
    const auto start = std::chrono::steady_clock::now();
    const topo::AsGraph graph =
        topo::generate(topo::profile(profile_name, args.scale * 0.5));
    const topo::NodeId destination = 0;
    bench::add_memory_rows(json, profile_name, graph);

    // Mixed churn: the seeded generator's workload, defenses off, with the
    // invariant checker auditing the whole replay.
    churn::ChurnTraceConfig trace_config;
    trace_config.seed = args.config.seed;
    trace_config.duration = 12000;
    trace_config.episodes = 16;
    const churn::ChurnTrace mixed =
        churn::generate_churn_trace(graph, destination, trace_config);
    churn::ReplayConfig replay_config;
    replay_config.checkpoint_interval = 1000;
    const churn::ReplayResult base =
        churn::replay_churn(graph, mixed, replay_config);

    obs::Histogram durations;
    obs::Histogram messages;
    for (const churn::ConvergenceSample& sample : base.convergence) {
      durations.observe(static_cast<double>(sample.duration()));
      messages.observe(static_cast<double>(sample.messages));
    }
    const double conv_p50 = durations.p50();
    const double conv_p90 = durations.p90();
    const double msgs_per_burst = messages.mean();
    std::size_t violations = base.violations.size();

    // Monitoring overhead: the identical mixed replay, provenance recorder
    // off vs on. The monitored run must agree with the unmonitored one on
    // every protocol counter (zero-cost-when-disabled means zero behaviour
    // change when enabled), and its record stream must close the books
    // against those counters; either failure counts as a violation.
    const auto off_t0 = std::chrono::steady_clock::now();
    const churn::ReplayResult unmonitored =
        churn::replay_churn(graph, mixed, replay_config);
    const double monitor_off_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - off_t0)
            .count();
    obs::RibMonitor rib;
    churn::ReplayConfig monitored_config = replay_config;
    monitored_config.ribmon = &rib;
    const auto on_t0 = std::chrono::steady_clock::now();
    const churn::ReplayResult monitored =
        churn::replay_churn(graph, mixed, monitored_config);
    const double monitor_on_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - on_t0)
            .count();
    const obs::ProvenanceSummary provenance =
        obs::build_propagation_trees(rib.records());
    const bool monitor_ok =
        monitored.bgp.updates_sent == unmonitored.bgp.updates_sent &&
        monitored.bgp.withdrawals_sent == unmonitored.bgp.withdrawals_sent &&
        monitored.bgp.selections == unmonitored.bgp.selections &&
        rib.wire_messages() ==
            monitored.bgp.updates_sent + monitored.bgp.withdrawals_sent &&
        provenance.total_updates ==
            monitored.bgp.updates_sent + monitored.bgp.withdrawals_sent &&
        provenance.orphans == 0;
    if (!monitor_ok) ++violations;

    // Persistent flapper on the destination's first link: off vs on.
    const topo::NodeId flappy = graph.neighbors(destination).front().node;
    const churn::ChurnTrace flap_trace = churn::make_persistent_flap_trace(
        graph, destination, destination, flappy, /*flaps=*/30, /*period=*/120);
    churn::ReplayConfig off_config;
    off_config.checkpoint_interval = 0;  // final audit only: pure message cost
    const churn::ReplayResult off =
        churn::replay_churn(graph, flap_trace, off_config);
    churn::ReplayConfig on_config = off_config;
    on_config.defense.mrai = 60;
    on_config.defense.damping_enabled = true;
    const churn::ReplayResult on =
        churn::replay_churn(graph, flap_trace, on_config);
    violations += off.violations.size() + on.violations.size();

    const std::size_t off_msgs = off.bgp.updates_sent + off.bgp.withdrawals_sent;
    const std::size_t on_msgs = on.bgp.updates_sent + on.bgp.withdrawals_sent;
    const double suppression =
        on_msgs == 0 ? 0 : static_cast<double>(off_msgs) / on_msgs;

    table.add_row({profile_name, std::to_string(graph.node_count()),
                   std::to_string(base.convergence.size()),
                   fixed2(conv_p50), fixed2(conv_p90),
                   fixed2(msgs_per_burst), std::to_string(off_msgs),
                   std::to_string(on_msgs), fixed2(suppression) + "x",
                   std::to_string(rib.size()),
                   std::to_string(violations)});
    json.add(profile_name + ".mixed.bursts",
             static_cast<double>(base.convergence.size()), "bursts");
    json.add(profile_name + ".mixed.convergence_p50", conv_p50, "ticks");
    json.add(profile_name + ".mixed.convergence_p90", conv_p90, "ticks");
    json.add(profile_name + ".mixed.msgs_per_burst", msgs_per_burst,
             "messages");
    json.add(profile_name + ".mixed.rib_bytes",
             static_cast<double>(base.rib.rib_bytes), "bytes");
    json.add(profile_name + ".mixed.bytes_per_route",
             base.rib.bytes_per_route(), "bytes/route");
    json.add(profile_name + ".mixed.checker_bytes",
             static_cast<double>(base.checker_bytes), "bytes");
    json.add(profile_name + ".flap.updates_off",
             static_cast<double>(off_msgs), "messages");
    json.add(profile_name + ".flap.updates_on",
             static_cast<double>(on_msgs), "messages");
    json.add(profile_name + ".flap.suppression_ratio", suppression, "x");
    json.add(profile_name + ".flap.routes_damped",
             static_cast<double>(on.bgp.routes_damped), "routes");
    json.add(profile_name + ".monitor.replay_off_ms", monitor_off_ms, "ms");
    json.add(profile_name + ".monitor.replay_on_ms", monitor_on_ms, "ms");
    json.add(profile_name + ".monitor.records",
             static_cast<double>(rib.size()), "records");
    json.add(profile_name + ".monitor.trees",
             static_cast<double>(provenance.trees.size()), "trees");
    json.add(profile_name + ".violations",
             static_cast<double>(violations), "violations");
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    json.add(profile_name + ".elapsed",
             static_cast<double>(elapsed.count()), "ms");
  }
  std::cout << "Churn convergence: mixed-trace burst distribution and the "
               "MRAI+damping suppression ratio under a persistent flapper\n";
  table.print(std::cout);
  std::cout << "(convergence in sim ticks per churn burst; 'suppression' is "
               "total UPDATE/WITHDRAW traffic with defenses off divided by "
               "defenses on over the same 30-flap script; the violations "
               "column is the online invariant checker's verdict and must "
               "be 0)\n";
  obs::set_memory(nullptr);
  obs::set_profile(nullptr);
  return json.write() ? 0 : 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
