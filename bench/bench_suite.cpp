// Unified bench driver: runs every reproduction bench with --json, merges
// the per-bench snapshots (result rows + wall-clock profiler summaries)
// into one top-level document — the format the perf-regression gate
// (bench_compare, obs/regression.hpp) consumes and the BENCH_PR3.json
// baseline is checked in as:
//   {"suite":"miro-bench","schema":1,"config":{...},"benches":{...}}
//
//   ./run_suite [--out PATH] [--bin-dir DIR] [--scale X] [--dests N]
//               [--sources N] [--seed N] [--threads N] [--profile NAME]
//               [--skip NAME]... [--quick | --full]
//
// --quick shrinks every knob for CI (one profile, small samples) so the
// gate measures relative shape, not absolute scale. --full is the other
// end: the internet2006 profile at scale 1.0 (~70k ASes, ~142k edges) with
// a small destination sample, restricted to the benches whose cost scales
// with graph size rather than with (samples x solves per sample); its
// snapshot defaults to BENCH_FULL.json so the two tiers' baselines live
// side by side. Bench stdout goes to the console (it is the human-readable
// reproduction); only the JSON snapshots are merged. --threads forwards to
// every bench (default: the benches resolve MIRO_THREADS / hardware
// concurrency themselves); it is excluded from the merged config section
// because result rows are bit-identical at any thread count and snapshots
// must stay comparable across thread counts.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"

namespace {

struct BenchSpec {
  const char* name;
  bool takes_eval_flags;  ///< accepts --profile/--scale/--dests/--sources
  bool full_tier;         ///< affordable at internet scale (--full runs it)
};

// Every reproduction bench. bench_micro_protocol is google-benchmark based
// and slow by design; it participates with its own flag set. The full-tier
// mark admits a bench to --full: those whose cost is dominated by the
// sampled work (per-destination solves, per-tuple negotiations) stay
// affordable at 70k nodes, while the ones that sweep every node or replay
// message-level churn do not.
const BenchSpec kBenches[] = {
    {"bench_table_5_1_datasets", true, true},
    {"bench_fig_5_1_degree_distribution", true, true},
    {"bench_fig_5_2_5_3_path_diversity", true, true},
    {"bench_table_5_2_avoid_success", true, true},
    {"bench_table_5_3_negotiation_state", true, true},
    {"bench_fig_5_4_5_5_incremental", true, true},
    {"bench_fig_5_6_5_7_traffic_control", true, false},
    {"bench_convergence_lab", false, false},
    {"bench_ablation_te_mechanisms", true, false},
    {"bench_ablation_negotiation_scope", true, false},
    {"bench_inference_accuracy", true, false},
    {"bench_overhead_messages", true, false},
    {"bench_churn_convergence", true, false},
    {"bench_verify_fixpoint", true, true},
    {"bench_internet_scale", true, true},
};

struct SuiteArgs {
  std::string out = "BENCH_PR3.json";
  std::string bin_dir;
  std::string profile;  // empty = every paper profile
  double scale = 0.25;
  std::size_t dests = 20;
  std::size_t sources = 10;
  std::uint64_t seed = 42;
  long threads = 0;  // 0 = let each bench resolve MIRO_THREADS / hardware
  bool full = false;  // --full: internet scale, full-tier benches only
  std::set<std::string> skip;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out PATH] [--bin-dir DIR] [--scale X] "
               "[--dests N] [--sources N] [--seed N] [--threads N] "
               "[--profile NAME] [--skip NAME]... [--quick | --full]\n",
               argv0);
  std::exit(2);
}

SuiteArgs parse(int argc, char** argv) {
  SuiteArgs args;
  bool out_explicit = false;
  // Default bin dir: wherever this driver lives (all benches are siblings).
  const std::string self = argv[0];
  const std::size_t slash = self.find_last_of('/');
  args.bin_dir = slash == std::string::npos ? "." : self.substr(0, slash);
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--out") {
      args.out = value();
      out_explicit = true;
    }
    else if (flag == "--bin-dir") args.bin_dir = value();
    else if (flag == "--scale") args.scale = std::atof(value());
    else if (flag == "--dests")
      args.dests = static_cast<std::size_t>(std::atoll(value()));
    else if (flag == "--sources")
      args.sources = static_cast<std::size_t>(std::atoll(value()));
    else if (flag == "--seed")
      args.seed = static_cast<std::uint64_t>(std::atoll(value()));
    else if (flag == "--threads") {
      const char* text = value();
      char* end = nullptr;
      args.threads = std::strtol(text, &end, 10);
      if (end == text || *end != '\0' || args.threads <= 0) {
        std::fprintf(stderr,
                     "%s: --threads expects a positive integer, got '%s'\n",
                     argv[0], text);
        std::exit(2);
      }
    }
    else if (flag == "--profile") args.profile = value();
    else if (flag == "--skip") args.skip.insert(value());
    else if (flag == "--quick") {
      args.profile = "gao2005";
      args.scale = 0.15;
      args.dests = 10;
      args.sources = 8;
    } else if (flag == "--full") {
      // Measured-Internet scale: ~70k ASes. Sample counts stay small — the
      // tier exists to exercise graph-size scaling, not sample breadth.
      args.profile = "internet2006";
      args.scale = 1.0;
      args.dests = 6;
      args.sources = 4;
      args.full = true;
    } else {
      usage(argv[0]);
    }
  }
  // The two tiers keep separate checked-in baselines; --out still wins.
  if (args.full && !out_explicit) args.out = "BENCH_FULL.json";
  return args;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  const SuiteArgs args = parse(argc, argv);

  const auto suite_start = std::chrono::steady_clock::now();
  miro::JsonValue benches = miro::JsonValue::make_object();
  std::size_t failures = 0;
  for (const BenchSpec& spec : kBenches) {
    if (args.full && !spec.full_tier) continue;
    if (args.skip.count(spec.name) != 0) {
      std::printf("== %s (skipped)\n", spec.name);
      continue;
    }
    const std::string snapshot_path =
        args.out + "." + spec.name + ".part.json";
    std::string command = args.bin_dir + "/" + spec.name;
    if (spec.takes_eval_flags) {
      command += " --scale " + std::to_string(args.scale);
      command += " --dests " + std::to_string(args.dests);
      command += " --sources " + std::to_string(args.sources);
      command += " --seed " + std::to_string(args.seed);
      if (!args.profile.empty()) command += " --profile " + args.profile;
    }
    if (args.threads > 0)
      command += " --threads " + std::to_string(args.threads);
    command += " --json " + snapshot_path;
    std::printf("== %s\n", spec.name);
    std::fflush(stdout);
    const auto bench_start = std::chrono::steady_clock::now();
    const int status = std::system(command.c_str());
    const double bench_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      bench_start)
            .count();
    std::printf("== %s: %.1f s%s\n", spec.name, bench_seconds,
                status != 0 ? " (FAILED)" : "");
    std::fflush(stdout);
    const std::string text = read_file(snapshot_path);
    std::remove(snapshot_path.c_str());
    if (status != 0 || text.empty()) {
      std::fprintf(stderr, "run_suite: %s failed (exit %d)\n", spec.name,
                   status);
      ++failures;
      continue;
    }
    try {
      benches.set(spec.name, miro::JsonValue::parse(text));
    } catch (const miro::Error& error) {
      std::fprintf(stderr, "run_suite: %s wrote invalid JSON: %s\n",
                   spec.name, error.what());
      ++failures;
    }
  }

  miro::JsonValue config = miro::JsonValue::make_object();
  config.set("scale", miro::JsonValue::make_number(args.scale));
  config.set("dests",
             miro::JsonValue::make_number(static_cast<double>(args.dests)));
  config.set("sources",
             miro::JsonValue::make_number(static_cast<double>(args.sources)));
  config.set("seed",
             miro::JsonValue::make_number(static_cast<double>(args.seed)));
  config.set("profile", miro::JsonValue::make_string(
                            args.profile.empty() ? "all" : args.profile));

  miro::JsonValue doc = miro::JsonValue::make_object();
  doc.set("suite", miro::JsonValue::make_string("miro-bench"));
  doc.set("schema", miro::JsonValue::make_number(1));
  doc.set("config", std::move(config));
  doc.set("benches", std::move(benches));

  std::ofstream out(args.out);
  if (!out) {
    std::fprintf(stderr, "run_suite: cannot write %s\n", args.out.c_str());
    return 2;
  }
  out << doc.dump() << "\n";
  const double suite_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    suite_start)
          .count();
  std::printf("\nrun_suite: merged %zu bench snapshot(s) into %s (%zu "
              "failed, %.1f s total)\n",
              doc.at("benches").size(), args.out.c_str(), failures,
              suite_seconds);
  return failures == 0 ? 0 : 1;
}
