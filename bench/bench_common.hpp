// Shared command-line handling for the reproduction benches.
//
// Every bench accepts:
//   --profile <name>   topology profile (default: all four paper profiles)
//   --scale <x>        profile scale in (0,1], default 0.5
//   --dests <n>        sampled destinations (default 80)
//   --sources <n>      sampled sources per destination (default 40)
//   --seed <n>         sampling seed (default 42)
//   --threads <n>      eval worker threads (default: MIRO_THREADS env,
//                      else hardware concurrency; 1 = fully serial)
//   --json <path>      also write results as machine-readable JSON
// so the paper tables regenerate quickly by default and at full scale on
// request. The JSON snapshot carries each result as {name, value, unit}
// plus the simulation config that produced it, for regression tracking
// across runs / CI artifacts. The thread count is deliberately NOT part of
// the JSON config: results are bit-identical at any thread count (the
// determinism contract tests/parallel_test.cpp enforces), so snapshots from
// different --threads runs must stay byte-comparable.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/parallel.hpp"
#include "eval/experiments.hpp"
#include "obs/memstats.hpp"
#include "obs/profile.hpp"

namespace miro::bench {

/// Collects {name, value, unit} result rows plus the sim-config that
/// produced them, and writes one JSON object:
///   {"config":{...},"results":[{"name":...,"value":...,"unit":...},...]}
/// plus an optional "profile" section with the run's wall-clock span
/// summary. All strings go through the shared JSON escaper and non-finite
/// values are emitted as `null` (bare nan/inf are not JSON).
/// A writer with an empty path is inert — add()/write() cost nothing, so
/// benches call them unconditionally.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string path = {}) : path_(std::move(path)) {}

  bool active() const { return !path_.empty(); }

  void set_config(const std::string& key, const std::string& value) {
    if (active()) config_.emplace_back(key, value);
  }
  void set_config(const std::string& key, double value) {
    set_config(key, json_number(value));
  }

  void add(const std::string& name, double value, const std::string& unit) {
    if (active()) rows_.push_back({name, value, unit});
  }

  /// Attaches (non-owning) a profiler whose per-span aggregates are written
  /// as the snapshot's "profile" section; it must outlive write().
  void set_profile(const obs::ProfileRegistry* profile) {
    profile_ = profile;
  }

  /// Attaches (non-owning) a memory registry whose accounts are written as
  /// the snapshot's "memory" section (current/peak bytes per account, plus
  /// RSS when sampled); it must outlive write(). Informational context —
  /// the regression gate reads the byte rows in "results", not this.
  void set_memory(const obs::MemoryRegistry* memory) { memory_ = memory; }

  /// Writes the snapshot; returns false (with a note on stderr) on I/O
  /// failure so benches can surface a nonzero exit if they care.
  bool write() const {
    if (!active()) return true;
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
      return false;
    }
    out << "{\"config\":{";
    for (std::size_t i = 0; i < config_.size(); ++i) {
      if (i != 0) out << ",";
      out << "\"" << json_escape(config_[i].first) << "\":\""
          << json_escape(config_[i].second) << "\"";
    }
    out << "},\"results\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i != 0) out << ",";
      out << "{\"name\":\"" << json_escape(rows_[i].name)
          << "\",\"value\":" << json_number(rows_[i].value)
          << ",\"unit\":\"" << json_escape(rows_[i].unit) << "\"}";
    }
    out << "]";
    if (profile_ != nullptr) {
      out << ",\"profile\":{";
      bool first = true;
      for (const auto& [name, stats] : profile_->by_name()) {
        if (!first) out << ",";
        first = false;
        out << "\"" << json_escape(name)
            << "\":{\"count\":" << stats.count << ",\"total_ms\":"
            << json_number(static_cast<double>(stats.total_ns) / 1e6)
            << ",\"self_ms\":"
            << json_number(static_cast<double>(stats.self_ns) / 1e6)
            << ",\"max_ms\":"
            << json_number(static_cast<double>(stats.max_ns) / 1e6) << "}";
      }
      out << "}";
    }
    if (memory_ != nullptr) {
      out << ",\"memory\":{\"accounts\":{";
      bool first = true;
      for (const auto& [name, counters] : memory_->accounts()) {
        if (!first) out << ",";
        first = false;
        out << "\"" << json_escape(name)
            << "\":{\"bytes\":" << counters.current
            << ",\"peak_bytes\":" << counters.peak << "}";
      }
      out << "}";
      if (memory_->rss_samples() > 0) {
        out << ",\"rss_bytes\":" << memory_->rss_bytes()
            << ",\"rss_peak_bytes\":" << memory_->rss_peak_bytes();
      }
      out << "}";
    }
    out << "}\n";
    return static_cast<bool>(out);
  }

 private:
  struct Row {
    std::string name;
    double value;
    std::string unit;
  };
  std::string path_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<Row> rows_;
  const obs::ProfileRegistry* profile_ = nullptr;
  const obs::MemoryRegistry* memory_ = nullptr;
};

/// Derived footprint rows for a graph-only bench: the graph's resident
/// bytes and bytes-per-edge. Capacity walks, so the rows obey the suite's
/// bit-identical determinism contract (unlike RSS, which never becomes a
/// result row). Gated by bench_compare's memory thresholds.
inline void add_memory_rows(BenchJsonWriter& json, const std::string& prefix,
                            const topo::AsGraph& graph) {
  const double bytes = static_cast<double>(graph.memory_bytes());
  json.add(prefix + ".graph_bytes", bytes, "bytes");
  if (graph.edge_count() > 0) {
    json.add(prefix + ".bytes_per_edge",
             bytes / static_cast<double>(graph.edge_count()), "bytes/edge");
  }
}

/// Derived footprint rows for a plan-based bench: graph rows plus the
/// solved routing state's bytes and bytes-per-route (routes = reachable
/// (node, tree) pairs across the plan's trees).
inline void add_memory_rows(BenchJsonWriter& json, const std::string& prefix,
                            const eval::ExperimentPlan& plan) {
  add_memory_rows(json, prefix, plan.graph());
  const double tree_bytes = static_cast<double>(plan.trees_memory_bytes());
  json.add(prefix + ".trees_bytes", tree_bytes, "bytes");
  if (plan.route_count() > 0) {
    json.add(prefix + ".bytes_per_route",
             tree_bytes / static_cast<double>(plan.route_count()),
             "bytes/route");
  }
}

/// Pulls `--json <path>` out of argv (compacting it) and returns the path,
/// or "" when absent. For benches whose remaining flags are parsed by
/// another layer (google-benchmark's Initialize rejects unknown flags).
/// A trailing `--json` with no value is an error, not a silent no-op.
inline std::string take_json_flag(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for --json\n", argv[0]);
        std::exit(2);
      }
      path = argv[++i];
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return path;
}

/// Strictly parses a `--threads` value (matching the MIRO_THREADS
/// validation in par::thread_count) and exits with usage status 2 on a
/// non-numeric or non-positive value, so a typo never silently falls back
/// to the automatic thread count.
inline std::size_t parse_threads_value(const char* prog, const char* value) {
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed <= 0) {
    std::fprintf(stderr, "%s: --threads expects a positive integer, got '%s'\n",
                 prog, value);
    std::exit(2);
  }
  return static_cast<std::size_t>(parsed);
}

/// Pulls `--threads <n>` out of argv (compacting it) and applies it via
/// par::set_thread_count. Companion to take_json_flag for benches whose
/// remaining flags are parsed by another layer.
inline void take_threads_flag(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--threads") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for --threads\n", argv[0]);
        std::exit(2);
      }
      par::set_thread_count(parse_threads_value(argv[0], argv[++i]));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
}

struct BenchArgs {
  std::vector<std::string> profiles{"gao2000", "gao2003", "gao2005",
                                    "agarwal2004"};
  double scale = 0.5;
  std::string json_path;    // empty = no JSON output
  eval::EvalConfig config;  // profile filled per run

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    args.config.destination_samples = 80;
    args.config.sources_per_destination = 40;
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      auto value = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", flag.c_str());
          std::exit(2);
        }
        return argv[++i];
      };
      if (flag == "--profile") {
        args.profiles = {value()};
      } else if (flag == "--scale") {
        args.scale = std::atof(value());
      } else if (flag == "--dests") {
        args.config.destination_samples =
            static_cast<std::size_t>(std::atoll(value()));
      } else if (flag == "--sources") {
        args.config.sources_per_destination =
            static_cast<std::size_t>(std::atoll(value()));
      } else if (flag == "--seed") {
        args.config.seed = static_cast<std::uint64_t>(std::atoll(value()));
      } else if (flag == "--threads") {
        par::set_thread_count(parse_threads_value(argv[0], value()));
      } else if (flag == "--json") {
        args.json_path = value();
      } else {
        std::fprintf(stderr,
                     "usage: %s [--profile NAME] [--scale X] [--dests N] "
                     "[--sources N] [--seed N] [--threads N] [--json PATH]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    return args;
  }

  eval::EvalConfig config_for(const std::string& profile) const {
    eval::EvalConfig config = this->config;
    config.profile = profile;
    config.scale = scale;
    return config;
  }

  /// A JSON writer (inert without --json) prefilled with the sim-config
  /// these args describe.
  BenchJsonWriter json_writer() const {
    BenchJsonWriter writer(json_path);
    std::string profile_list;
    for (const std::string& profile : profiles) {
      if (!profile_list.empty()) profile_list += ",";
      profile_list += profile;
    }
    writer.set_config("profiles", profile_list);
    writer.set_config("scale", scale);
    writer.set_config("dests",
                      static_cast<double>(config.destination_samples));
    writer.set_config("sources",
                      static_cast<double>(config.sources_per_destination));
    writer.set_config("seed", static_cast<double>(config.seed));
    return writer;
  }
};

}  // namespace miro::bench
