// Shared command-line handling for the reproduction benches.
//
// Every bench accepts:
//   --profile <name>   topology profile (default: all four paper profiles)
//   --scale <x>        profile scale in (0,1], default 0.5
//   --dests <n>        sampled destinations (default 80)
//   --sources <n>      sampled sources per destination (default 40)
//   --seed <n>         sampling seed (default 42)
//   --json <path>      also write results as machine-readable JSON
// so the paper tables regenerate quickly by default and at full scale on
// request. The JSON snapshot carries each result as {name, value, unit}
// plus the simulation config that produced it, for regression tracking
// across runs / CI artifacts.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "eval/experiments.hpp"

namespace miro::bench {

/// Collects {name, value, unit} result rows plus the sim-config that
/// produced them, and writes one JSON object:
///   {"config":{...},"results":[{"name":...,"value":...,"unit":...},...]}
/// A writer with an empty path is inert — add()/write() cost nothing, so
/// benches call them unconditionally.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string path = {}) : path_(std::move(path)) {}

  bool active() const { return !path_.empty(); }

  void set_config(const std::string& key, const std::string& value) {
    if (active()) config_.emplace_back(key, value);
  }
  void set_config(const std::string& key, double value) {
    set_config(key, format_number(value));
  }

  void add(const std::string& name, double value, const std::string& unit) {
    if (active()) rows_.push_back({name, value, unit});
  }

  /// Writes the snapshot; returns false (with a note on stderr) on I/O
  /// failure so benches can surface a nonzero exit if they care.
  bool write() const {
    if (!active()) return true;
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
      return false;
    }
    out << "{\"config\":{";
    for (std::size_t i = 0; i < config_.size(); ++i) {
      if (i != 0) out << ",";
      out << "\"" << config_[i].first << "\":\"" << config_[i].second
          << "\"";
    }
    out << "},\"results\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i != 0) out << ",";
      out << "{\"name\":\"" << rows_[i].name
          << "\",\"value\":" << format_number(rows_[i].value)
          << ",\"unit\":\"" << rows_[i].unit << "\"}";
    }
    out << "]}\n";
    return static_cast<bool>(out);
  }

 private:
  static std::string format_number(double value) {
    if (value == static_cast<double>(static_cast<long long>(value))) {
      return std::to_string(static_cast<long long>(value));
    }
    return std::to_string(value);
  }

  struct Row {
    std::string name;
    double value;
    std::string unit;
  };
  std::string path_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<Row> rows_;
};

/// Pulls `--json <path>` out of argv (compacting it) and returns the path,
/// or "" when absent. For benches whose remaining flags are parsed by
/// another layer (google-benchmark's Initialize rejects unknown flags).
inline std::string take_json_flag(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      path = argv[++i];
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return path;
}

struct BenchArgs {
  std::vector<std::string> profiles{"gao2000", "gao2003", "gao2005",
                                    "agarwal2004"};
  double scale = 0.5;
  std::string json_path;    // empty = no JSON output
  eval::EvalConfig config;  // profile filled per run

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    args.config.destination_samples = 80;
    args.config.sources_per_destination = 40;
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      auto value = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", flag.c_str());
          std::exit(2);
        }
        return argv[++i];
      };
      if (flag == "--profile") {
        args.profiles = {value()};
      } else if (flag == "--scale") {
        args.scale = std::atof(value());
      } else if (flag == "--dests") {
        args.config.destination_samples =
            static_cast<std::size_t>(std::atoll(value()));
      } else if (flag == "--sources") {
        args.config.sources_per_destination =
            static_cast<std::size_t>(std::atoll(value()));
      } else if (flag == "--seed") {
        args.config.seed = static_cast<std::uint64_t>(std::atoll(value()));
      } else if (flag == "--json") {
        args.json_path = value();
      } else {
        std::fprintf(stderr,
                     "usage: %s [--profile NAME] [--scale X] [--dests N] "
                     "[--sources N] [--seed N] [--json PATH]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    return args;
  }

  eval::EvalConfig config_for(const std::string& profile) const {
    eval::EvalConfig config = this->config;
    config.profile = profile;
    config.scale = scale;
    return config;
  }

  /// A JSON writer (inert without --json) prefilled with the sim-config
  /// these args describe.
  BenchJsonWriter json_writer() const {
    BenchJsonWriter writer(json_path);
    std::string profile_list;
    for (const std::string& profile : profiles) {
      if (!profile_list.empty()) profile_list += ",";
      profile_list += profile;
    }
    writer.set_config("profiles", profile_list);
    writer.set_config("scale", scale);
    writer.set_config("dests",
                      static_cast<double>(config.destination_samples));
    writer.set_config("sources",
                      static_cast<double>(config.sources_per_destination));
    writer.set_config("seed", static_cast<double>(config.seed));
    return writer;
  }
};

}  // namespace miro::bench
