// Shared command-line handling for the reproduction benches.
//
// Every bench accepts:
//   --profile <name>   topology profile (default: all four paper profiles)
//   --scale <x>        profile scale in (0,1], default 0.5
//   --dests <n>        sampled destinations (default 80)
//   --sources <n>      sampled sources per destination (default 40)
//   --seed <n>         sampling seed (default 42)
// so the paper tables regenerate quickly by default and at full scale on
// request.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/experiments.hpp"

namespace miro::bench {

struct BenchArgs {
  std::vector<std::string> profiles{"gao2000", "gao2003", "gao2005",
                                    "agarwal2004"};
  double scale = 0.5;
  eval::EvalConfig config;  // profile filled per run

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    args.config.destination_samples = 80;
    args.config.sources_per_destination = 40;
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      auto value = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", flag.c_str());
          std::exit(2);
        }
        return argv[++i];
      };
      if (flag == "--profile") {
        args.profiles = {value()};
      } else if (flag == "--scale") {
        args.scale = std::atof(value());
      } else if (flag == "--dests") {
        args.config.destination_samples =
            static_cast<std::size_t>(std::atoll(value()));
      } else if (flag == "--sources") {
        args.config.sources_per_destination =
            static_cast<std::size_t>(std::atoll(value()));
      } else if (flag == "--seed") {
        args.config.seed = static_cast<std::uint64_t>(std::atoll(value()));
      } else {
        std::fprintf(stderr,
                     "usage: %s [--profile NAME] [--scale X] [--dests N] "
                     "[--sources N] [--seed N]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    return args;
  }

  eval::EvalConfig config_for(const std::string& profile) const {
    eval::EvalConfig config = this->config;
    config.profile = profile;
    config.scale = scale;
    return config;
  }
};

}  // namespace miro::bench
