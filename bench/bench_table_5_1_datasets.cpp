// Regenerates Table 5.1: attributes of the data sets.
//
// Paper values (measured RouteViews snapshots):
//   Gao 2000: 8829 nodes, 17793 edges, 16531 P/C, 1031 peer, 231 sibling
//   Gao 2003: 16130 / 34231 / 30649 / 3062 / 520
//   Gao 2005: 20930 / 44998 / 40558 / 3753 / 687
//   Agarwal 2004: 16921 / 38282 / 34552 / 3553 / 177
// The synthetic profiles reproduce the edge-per-node density and the
// relationship mix at the requested scale.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eval/dataset_report.hpp"
#include "topology/generator.hpp"

int main(int argc, char** argv) {
  try {
  const auto args = miro::bench::BenchArgs::parse(argc, argv);
  miro::obs::ProfileRegistry prof;
  miro::obs::set_profile(&prof);
  miro::obs::MemoryRegistry mem;
  miro::obs::set_memory(&mem);
  miro::bench::BenchJsonWriter json = args.json_writer();
  json.set_profile(&prof);
  json.set_memory(&mem);
  const auto start = std::chrono::steady_clock::now();
  miro::eval::print_dataset_table(args.profiles, args.scale, std::cout);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  json.add("dataset_table.elapsed", static_cast<double>(elapsed.count()),
           "ms");
  for (const std::string& profile : args.profiles) {
    const miro::topo::AsGraph graph =
        miro::topo::generate(miro::topo::profile(profile, args.scale));
    miro::bench::add_memory_rows(json, profile, graph);
  }
  miro::obs::set_memory(nullptr);
  miro::obs::set_profile(nullptr);
  return json.write() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
