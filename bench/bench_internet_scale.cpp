// Internet-scale topology bench: generation and solve cost at full scale.
//
// The dissertation's evaluation runs on measured RouteViews snapshots with
// tens of thousands of ASes; this bench proves the pipeline holds up at
// that size and pins the cost down as gated rows. Per profile it measures
//   <profile>.generate_ms        wall-clock to generate + freeze the graph
//   <profile>.solve_ms_per_dest  mean serial solve time per destination
//   <profile>.graph_bytes / .bytes_per_edge    frozen CSR footprint
//   <profile>.trees_bytes / .bytes_per_route   routing-state footprint
// plus unitless node/edge/route counts. Byte and count rows come from
// deterministic walks (bit-identical at any thread count, exact-matched by
// the --values-only determinism gate); the ms rows ride the loose time
// threshold. Solves are intentionally serial so the per-destination number
// is a clean single-core cost, not a parallel-speedup artifact.
//
// Extra flag (pulled out before the shared parser):
//   --save <path>   also write the generated graph in CAIDA pipe format,
//                   for downstream consumers (the CI smoke job feeds it to
//                   miro_lint --topology).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bgp/route_solver.hpp"
#include "common/arena.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "topology/generator.hpp"
#include "topology/serialization.hpp"

namespace {

/// Pulls `--save <path>` out of argv (compacting it), mirroring
/// take_json_flag; BenchArgs::parse rejects flags it does not know.
std::string take_save_flag(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--save") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for --save\n", argv[0]);
        std::exit(2);
      }
      path = argv[++i];
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return path;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string save_path = take_save_flag(argc, argv);
    const auto args = miro::bench::BenchArgs::parse(argc, argv);
    miro::obs::ProfileRegistry prof;
    miro::obs::set_profile(&prof);
    miro::obs::MemoryRegistry mem;
    miro::obs::set_memory(&mem);
    miro::bench::BenchJsonWriter json = args.json_writer();
    json.set_profile(&prof);
    json.set_memory(&mem);

    std::cout << "Internet-scale topology: generation and solve cost\n";
    miro::TextTable table({"profile", "nodes", "edges", "gen ms",
                           "solve ms/dest", "B/edge", "B/route"});

    for (const std::string& name : args.profiles) {
      const miro::topo::GeneratorParams params =
          miro::topo::profile(name, args.scale);

      const auto gen_start = std::chrono::steady_clock::now();
      const miro::topo::AsGraph graph = miro::topo::generate(params);
      const double generate_ms = ms_since(gen_start);

      const std::size_t n = graph.node_count();
      json.add(name + ".nodes", static_cast<double>(n), "count");
      json.add(name + ".edges", static_cast<double>(graph.edge_count()),
               "count");
      json.add(name + ".generate_ms", generate_ms, "ms");
      miro::bench::add_memory_rows(json, name, graph);

      // Destination sample drawn exactly like ExperimentPlan's, solved
      // serially into one arena (the RouteStore layout).
      miro::Rng rng(args.config.seed);
      const std::size_t samples =
          std::min(args.config.destination_samples, n);
      std::vector<miro::topo::NodeId> destinations;
      for (std::size_t index : rng.sample_indices(n, samples))
        destinations.push_back(static_cast<miro::topo::NodeId>(index));
      std::sort(destinations.begin(), destinations.end());

      const miro::bgp::StableRouteSolver solver(graph);
      miro::Arena arena(n * miro::bgp::RoutingTree::bytes_per_node());
      std::vector<miro::bgp::RoutingTree> trees;
      trees.reserve(destinations.size());
      const auto solve_start = std::chrono::steady_clock::now();
      for (miro::topo::NodeId destination : destinations)
        trees.push_back(solver.solve(destination, &arena));
      const double solve_ms = ms_since(solve_start);
      const double solve_ms_per_dest =
          destinations.empty() ? 0.0
                               : solve_ms /
                                     static_cast<double>(destinations.size());
      json.add(name + ".solve_ms_per_dest", solve_ms_per_dest, "ms");

      std::uint64_t routes = 0;
      std::uint64_t tree_bytes = 0;
      for (const miro::bgp::RoutingTree& tree : trees) {
        routes += tree.reachable_count();
        tree_bytes += tree.memory_bytes();
      }
      json.add(name + ".routes", static_cast<double>(routes), "count");
      json.add(name + ".trees_bytes", static_cast<double>(tree_bytes),
               "bytes");
      if (routes > 0) {
        json.add(name + ".bytes_per_route",
                 static_cast<double>(tree_bytes) /
                     static_cast<double>(routes),
                 "bytes/route");
      }
      mem.account("eval/trees").set_current(tree_bytes);
      mem.sample_rss();

      table.add_row(
          {name, std::to_string(n), std::to_string(graph.edge_count()),
           miro::TextTable::num(generate_ms, 1),
           miro::TextTable::num(solve_ms_per_dest, 2),
           miro::TextTable::num(
               static_cast<double>(graph.memory_bytes()) /
               static_cast<double>(graph.edge_count())),
           miro::TextTable::num(routes == 0
                                    ? 0.0
                                    : static_cast<double>(tree_bytes) /
                                          static_cast<double>(routes))});

      if (!save_path.empty()) {
        miro::topo::save_file(graph, save_path);
        std::cout << "saved " << name << " topology to " << save_path
                  << "\n";
      }
    }

    table.print(std::cout);
    miro::obs::set_memory(nullptr);
    miro::obs::set_profile(nullptr);
    return json.write() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
