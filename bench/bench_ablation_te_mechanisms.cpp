// Ablation bench: MIRO tunnels vs prefix deaggregation vs AS-path
// prepending for inbound traffic engineering (the Section 1.2 footnote).
//
// Expected shape: deaggregation moves a large, coarse chunk but costs one
// routing-table entry in EVERY AS; prepending is free but moves little
// (local preference is compared before AS-path length, so only same-class
// ties budge) and barely improves with depth; MIRO moves a meaningful,
// finely-negotiated share with state at just two ASes.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eval/te_comparison.hpp"

int main(int argc, char** argv) {
  try {
  const auto args = miro::bench::BenchArgs::parse(argc, argv);
  for (const std::string& profile : args.profiles) {
    const miro::eval::ExperimentPlan plan(args.config_for(profile));
    miro::eval::print(miro::eval::run_te_comparison(plan), std::cout);
    std::cout << "\n";
  }
  return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
