// Ablation bench: MIRO tunnels vs prefix deaggregation vs AS-path
// prepending for inbound traffic engineering (the Section 1.2 footnote).
//
// Expected shape: deaggregation moves a large, coarse chunk but costs one
// routing-table entry in EVERY AS; prepending is free but moves little
// (local preference is compared before AS-path length, so only same-class
// ties budge) and barely improves with depth; MIRO moves a meaningful,
// finely-negotiated share with state at just two ASes.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eval/te_comparison.hpp"

int main(int argc, char** argv) {
  try {
  const auto args = miro::bench::BenchArgs::parse(argc, argv);
  miro::obs::ProfileRegistry prof;
  miro::obs::set_profile(&prof);
  miro::obs::MemoryRegistry mem;
  miro::obs::set_memory(&mem);
  miro::bench::BenchJsonWriter json = args.json_writer();
  json.set_profile(&prof);
  json.set_memory(&mem);
  for (const std::string& profile : args.profiles) {
    const auto start = std::chrono::steady_clock::now();
    const miro::eval::ExperimentPlan plan(args.config_for(profile));
    miro::bench::add_memory_rows(json, profile, plan);
    const auto result = miro::eval::run_te_comparison(plan);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    miro::eval::print(result, std::cout);
    std::cout << "\n";
    json.add(profile + ".elapsed", static_cast<double>(elapsed.count()),
             "ms");
    for (const auto& mechanism : result.mechanisms) {
      json.add(profile + "." + mechanism.name + ".median_moved",
               mechanism.median_moved, "fraction");
    }
  }
  miro::obs::set_memory(nullptr);
  miro::obs::set_profile(nullptr);
  return json.write() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
