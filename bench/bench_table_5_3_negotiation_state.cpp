// Regenerates Table 5.3: the state MIRO handles while negotiating —
// success rate, ASes contacted per tuple, candidate paths received per
// tuple, restricted to the tuples plain BGP cannot satisfy.
//
// Paper shape: a stricter policy contacts MORE ASes but receives FEWER
// candidate paths (Gao 2005: strict 2.80 ASes / 36.6 paths vs flexible
// 2.38 ASes / 139.0 paths); later-year topologies yield more paths per
// tuple.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eval/avoid_as.hpp"

int main(int argc, char** argv) {
  try {
  const auto args = miro::bench::BenchArgs::parse(argc, argv);
  miro::obs::ProfileRegistry prof;
  miro::obs::set_profile(&prof);
  miro::obs::MemoryRegistry mem;
  miro::obs::set_memory(&mem);
  miro::bench::BenchJsonWriter json = args.json_writer();
  json.set_profile(&prof);
  json.set_memory(&mem);
  for (const std::string& profile : args.profiles) {
    const auto start = std::chrono::steady_clock::now();
    const miro::eval::ExperimentPlan plan(args.config_for(profile));
    miro::bench::add_memory_rows(json, profile, plan);
    const auto result = miro::eval::run_avoid_as(plan);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    miro::eval::print_table_5_3(result, std::cout);
    std::cout << "\n";
    json.add(profile + ".elapsed", static_cast<double>(elapsed.count()),
             "ms");
    for (const auto& row : result.state_rows) {
      const std::string key =
          profile + "." + miro::core::to_string(row.policy);
      json.add(key + ".success_rate", row.success_rate, "fraction");
      json.add(key + ".avg_ases_contacted", row.avg_ases_contacted, "count");
    }
  }
  miro::obs::set_memory(nullptr);
  miro::obs::set_profile(nullptr);
  return json.write() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
