// Regenerates Table 5.3: the state MIRO handles while negotiating —
// success rate, ASes contacted per tuple, candidate paths received per
// tuple, restricted to the tuples plain BGP cannot satisfy.
//
// Paper shape: a stricter policy contacts MORE ASes but receives FEWER
// candidate paths (Gao 2005: strict 2.80 ASes / 36.6 paths vs flexible
// 2.38 ASes / 139.0 paths); later-year topologies yield more paths per
// tuple.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eval/avoid_as.hpp"

int main(int argc, char** argv) {
  try {
  const auto args = miro::bench::BenchArgs::parse(argc, argv);
  for (const std::string& profile : args.profiles) {
    const miro::eval::ExperimentPlan plan(args.config_for(profile));
    const auto result = miro::eval::run_avoid_as(plan);
    miro::eval::print_table_5_3(result, std::cout);
    std::cout << "\n";
  }
  return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
