// Ablation bench: how much each negotiation capability contributes to the
// avoid-an-AS success rate (the DESIGN.md negotiation-scope ablation).
//
// Sweeps: plain BGP -> 1-hop negotiation only -> on-path negotiation
// (the paper's procedure) -> on-path + one level of multi-hop relay
// (Section 3.3's "AS B may ask AS C"). Expected shape: each step helps;
// multi-hop adds a real but modest tail because "most paths in today's
// Internet are short".
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/alternates.hpp"
#include "eval/experiments.hpp"

int main(int argc, char** argv) {
  try {
  using namespace miro;
  const auto args = bench::BenchArgs::parse(argc, argv);
  obs::ProfileRegistry prof;
  obs::set_profile(&prof);
  obs::MemoryRegistry mem;
  obs::set_memory(&mem);
  bench::BenchJsonWriter json = args.json_writer();
  json.set_profile(&prof);
  json.set_memory(&mem);
  for (const std::string& profile : args.profiles) {
    const auto start = std::chrono::steady_clock::now();
    const eval::ExperimentPlan plan(args.config_for(profile));
    bench::add_memory_rows(json, profile, plan);
    const core::AlternatesEngine engine(plan.solver());
    const auto tuples =
        plan.sample_tuples(plan.config().sources_per_destination);

    TextTable table({"policy", "BGP only", "1-hop", "on-path",
                     "on-path + multihop"});
    for (core::ExportPolicy policy : core::kAllPolicies) {
      std::size_t bgp_ok = 0, onehop_ok = 0, onpath_ok = 0, multi_ok = 0;
      for (const eval::SampledTuple& tuple : tuples) {
        const auto& tree = plan.tree(tuple.tree_index);
        const auto result =
            engine.avoid_as(tree, tuple.source, tuple.avoid, policy);
        if (result.bgp_success) ++bgp_ok;
        if (result.success) ++onpath_ok;
        // 1-hop: does any immediate-neighbor negotiation expose a clean
        // path?
        bool onehop = result.bgp_success;
        if (!onehop) {
          for (const core::SplicedPath& path : engine.collect(
                   tree, tuple.source, core::NegotiationScope::OneHop,
                   policy)) {
            if (!path.traverses(tuple.avoid)) {
              onehop = true;
              break;
            }
          }
        }
        if (onehop) ++onehop_ok;
        if (engine
                .avoid_as_multihop(tree, tuple.source, tuple.avoid, policy)
                .success)
          ++multi_ok;
      }
      const double n = static_cast<double>(tuples.size());
      table.add_row({std::string(core::to_string(policy)) +
                         core::suffix(policy),
                     TextTable::percent(bgp_ok / n),
                     TextTable::percent(onehop_ok / n),
                     TextTable::percent(onpath_ok / n),
                     TextTable::percent(multi_ok / n)});
      const std::string key =
          profile + "." + core::to_string(policy);
      json.add(key + ".bgp", bgp_ok / n, "fraction");
      json.add(key + ".onehop", onehop_ok / n, "fraction");
      json.add(key + ".onpath", onpath_ok / n, "fraction");
      json.add(key + ".multihop", multi_ok / n, "fraction");
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    json.add(profile + ".elapsed", static_cast<double>(elapsed.count()),
             "ms");
    std::cout << "Negotiation-scope ablation [" << profile << ", "
              << tuples.size() << " tuples]\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  obs::set_memory(nullptr);
  obs::set_profile(nullptr);
  return json.write() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
