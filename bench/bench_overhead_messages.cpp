// Control-plane overhead (the abstract's "tremendous flexibility ... with
// reasonable overhead" claim, quantified).
//
// Compares, on one synthetic Internet:
//   - what plain BGP costs: UPDATE messages for one prefix to converge, and
//     the reconvergence traffic of a single link failure;
//   - what MIRO adds: four control messages per negotiation plus periodic
//     keep-alives per active tunnel — independent of topology size, paid
//     only by the two negotiating ASes.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "bgp/session_bgp.hpp"
#include "common/table.hpp"
#include "core/protocol.hpp"
#include "topology/generator.hpp"

int main(int argc, char** argv) {
  try {
  using namespace miro;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::BenchJsonWriter json = args.json_writer();
  obs::ProfileRegistry prof;
  obs::set_profile(&prof);
  obs::MemoryRegistry mem;
  obs::set_memory(&mem);
  json.set_profile(&prof);
  json.set_memory(&mem);

  TextTable table({"profile", "ASes", "links", "BGP msgs to converge",
                   "msgs per link failure", "MIRO msgs per negotiation",
                   "keepalives/tunnel/100t"});
  for (const std::string& profile_name : args.profiles) {
    const auto start = std::chrono::steady_clock::now();
    const topo::AsGraph graph =
        topo::generate(topo::profile(profile_name, args.scale * 0.5));
    bench::add_memory_rows(json, profile_name, graph);

    // BGP: converge one prefix, then fail one transit link.
    sim::Scheduler scheduler;
    bgp::SessionedBgpNetwork network(graph, /*destination=*/0, scheduler);
    network.start();
    scheduler.run_all(50'000'000);
    const std::size_t converge_msgs =
        network.stats().updates_sent + network.stats().withdrawals_sent;
    // Fail the destination's busiest link.
    topo::NodeId neighbor = graph.neighbors(0).front().node;
    network.fail_link(0, neighbor);
    scheduler.run_all(50'000'000);
    const std::size_t failure_msgs = network.stats().updates_sent +
                                     network.stats().withdrawals_sent -
                                     converge_msgs;

    // MIRO: one negotiation's message count, measured on the wire.
    std::size_t negotiation_msgs = 0;
    {
      core::RouteStore store(graph);
      sim::Scheduler mscheduler;
      core::Bus bus(mscheduler);
      // Find an adjacent pair with something to negotiate about.
      bgp::StableRouteSolver solver(graph);
      const bgp::RoutingTree tree = solver.solve(0);
      topo::NodeId requester = topo::kInvalidNode, responder = 0;
      for (topo::NodeId s = 1; s < graph.node_count(); ++s) {
        if (!tree.reachable(s)) continue;
        const auto path = tree.path_of(s);
        if (path.size() >= 3 &&
            !solver.candidates_at(tree, path[1]).empty()) {
          requester = s;
          responder = path[1];
          break;
        }
      }
      if (requester != topo::kInvalidNode) {
        core::MiroAgent a(requester, store, bus);
        core::MiroAgent b(responder, store, bus);
        bool done = false;
        a.request(responder, requester, 0, std::nullopt, std::nullopt,
                  [&done](const core::NegotiationOutcome&) { done = true; });
        // Each protocol message is one bus delivery = one scheduler event;
        // run to just before the first keep-alive (t=100) and subtract the
        // two agents' periodic soft-state sweeps at t=100... which have not
        // fired yet, so the event count IS the handshake message count
        // (request + offers + accept + confirm).
        negotiation_msgs = mscheduler.run_until(99);
        (void)done;
      }
    }

    // Keep-alives: interval 100 ticks -> 1 per tunnel per 100 ticks.
    table.add_row({profile_name, std::to_string(graph.node_count()),
                   std::to_string(graph.edge_count()),
                   std::to_string(converge_msgs),
                   std::to_string(failure_msgs),
                   std::to_string(negotiation_msgs), "1"});
    json.add(profile_name + ".bgp_converge",
             static_cast<double>(converge_msgs), "messages");
    json.add(profile_name + ".bgp_link_failure",
             static_cast<double>(failure_msgs), "messages");
    json.add(profile_name + ".miro_negotiation",
             static_cast<double>(negotiation_msgs), "messages");
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    json.add(profile_name + ".elapsed",
             static_cast<double>(elapsed.count()), "ms");
  }
  std::cout << "Control-plane message overhead: BGP baseline vs MIRO "
               "additions\n";
  table.print(std::cout);
  std::cout << "(BGP pays per prefix per topology change across the whole "
               "network; a MIRO negotiation costs a constant four messages "
               "between exactly two ASes, plus soft-state keep-alives on "
               "established tunnels)\n";
  obs::set_memory(nullptr);
  obs::set_profile(nullptr);
  return json.write() ? 0 : 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
