// Layer-3 verification cost: how long the symbolic fixpoints take on the
// paper topologies, how much per-node state they hold, and — the gate that
// matters — whether the static plane still bit-matches the simulator.
//
// Rows per profile:
//   <p>.verify.fixpoint_ms    time to solve one symbolic fixpoint per
//                             sampled destination (regression-gated)
//   <p>.verify.state_bytes    capacity-walk bytes of those maps, also fed
//                             into the analysis/symbolic memory account
//                             (byte-row gated)
//   <p>.verify.entry_agree    fraction of tree entries where the planes
//                             agree — must be 1.0
//   <p>.verify.avoid_agree    fraction of avoid tuples where the planes
//                             agree — must be 1.0
#include <chrono>
#include <cstdio>
#include <iostream>

#include "analysis/symbolic_routes.hpp"
#include "bench_common.hpp"
#include "eval/experiments.hpp"

int main(int argc, char** argv) {
  try {
  const auto args = miro::bench::BenchArgs::parse(argc, argv);
  miro::obs::ProfileRegistry prof;
  miro::obs::set_profile(&prof);
  miro::obs::MemoryRegistry mem;
  miro::obs::set_memory(&mem);
  miro::bench::BenchJsonWriter json = args.json_writer();
  json.set_profile(&prof);
  json.set_memory(&mem);
  for (const std::string& profile : args.profiles) {
    const miro::eval::EvalConfig config = args.config_for(profile);
    const miro::eval::ExperimentPlan plan(config);
    miro::bench::add_memory_rows(json, profile, plan);
    const miro::analysis::SymbolicRouteEngine engine(plan.graph());

    // Timed region: one fixpoint per sampled destination (the same
    // destinations the simulator plane solved), state bytes accumulated.
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t state_bytes = 0;
    std::size_t sweeps = 0;
    for (const miro::bgp::RoutingTree& tree : plan.trees()) {
      const miro::analysis::SymbolicRouteMap map =
          engine.solve(tree.destination());
      state_bytes += map.memory_bytes();
      sweeps += map.sweeps();
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    mem.account("analysis/symbolic").set_current(state_bytes);

    // The correctness gate: the differential oracle on the same config.
    miro::analysis::DifferentialOptions diff;
    diff.seed = config.seed;
    diff.destination_samples = config.destination_samples;
    diff.sources_per_destination = config.sources_per_destination;
    const miro::analysis::DifferentialOutcome outcome =
        miro::analysis::differential_check(plan.graph(), diff, profile);

    const double ms = static_cast<double>(elapsed.count()) / 1000.0;
    std::cout << profile << ": " << plan.trees().size()
              << " fixpoints in " << ms << " ms (" << sweeps
              << " sweeps), " << state_bytes << " state bytes; differential: "
              << outcome.entries << " entries, " << outcome.tuples
              << " avoid tuples, " << outcome.entry_mismatches << "+"
              << outcome.avoid_mismatches << " divergences\n";
    if (!outcome.ok()) outcome.report.render_text(std::cerr);

    json.add(profile + ".verify.fixpoint_ms", ms, "ms");
    json.add(profile + ".verify.state_bytes",
             static_cast<double>(state_bytes), "bytes");
    json.add(profile + ".verify.entry_agree", outcome.entry_agree(),
             "fraction");
    json.add(profile + ".verify.avoid_agree", outcome.avoid_agree(),
             "fraction");
  }
  miro::obs::set_memory(nullptr);
  miro::obs::set_profile(nullptr);
  return json.write() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
