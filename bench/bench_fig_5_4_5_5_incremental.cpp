// Regenerates Figures 5.4/5.5: incremental deployment.
//
// Paper shape: with only the 0.2% most-connected ASes running MIRO the
// system already achieves ~40-50% of the full-deployment gain; the top 1%
// yields ~50-75%; deploying at the low-degree edge first achieves almost
// nothing until nearly everyone has converted.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eval/avoid_as.hpp"

int main(int argc, char** argv) {
  try {
  const auto args = miro::bench::BenchArgs::parse(argc, argv);
  miro::obs::ProfileRegistry prof;
  miro::obs::set_profile(&prof);
  miro::obs::MemoryRegistry mem;
  miro::obs::set_memory(&mem);
  miro::bench::BenchJsonWriter json = args.json_writer();
  json.set_profile(&prof);
  json.set_memory(&mem);
  for (const std::string& profile : args.profiles) {
    const auto start = std::chrono::steady_clock::now();
    const miro::eval::ExperimentPlan plan(args.config_for(profile));
    miro::bench::add_memory_rows(json, profile, plan);
    const auto result = miro::eval::run_incremental_deployment(plan);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    miro::eval::print(result, std::cout);
    std::cout << "\n";
    json.add(profile + ".elapsed", static_cast<double>(elapsed.count()),
             "ms");
    if (!result.points.empty()) {
      const auto& half = result.points[result.points.size() / 2];
      json.add(profile + ".mid_gain.flexible", half.relative_gain[2],
               "fraction");
      json.add(profile + ".mid_gain.low_degree_first",
               half.low_degree_first_gain, "fraction");
    }
  }
  miro::obs::set_memory(nullptr);
  miro::obs::set_profile(nullptr);
  return json.write() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
