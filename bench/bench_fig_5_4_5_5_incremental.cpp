// Regenerates Figures 5.4/5.5: incremental deployment.
//
// Paper shape: with only the 0.2% most-connected ASes running MIRO the
// system already achieves ~40-50% of the full-deployment gain; the top 1%
// yields ~50-75%; deploying at the low-degree edge first achieves almost
// nothing until nearly everyone has converted.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eval/avoid_as.hpp"

int main(int argc, char** argv) {
  try {
  const auto args = miro::bench::BenchArgs::parse(argc, argv);
  for (const std::string& profile : args.profiles) {
    const miro::eval::ExperimentPlan plan(args.config_for(profile));
    const auto result = miro::eval::run_incremental_deployment(plan);
    miro::eval::print(result, std::cout);
    std::cout << "\n";
  }
  return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
