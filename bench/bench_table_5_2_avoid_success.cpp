// Regenerates Table 5.2: avoid-an-AS success rates.
//
// Paper values to compare shape against:
//   Name         Single  Multi/s  Multi/e  Multi/a  Source
//   Gao 2000     27.8%   65.4%    72.9%    75.3%    89.5%
//   Gao 2003     31.2%   67.0%    74.6%    76.6%    90.4%
//   Gao 2005     29.5%   67.8%    73.7%    76.0%    91.1%
//   Sharad 2004  34.6%   56.7%    62.0%    68.1%    86.3%
// The ordering Single < Multi/s < Multi/e < Multi/a < Source and the rough
// magnitudes are the reproduction target.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <map>

#include "analysis/symbolic_routes.hpp"
#include "bench_common.hpp"
#include "eval/avoid_as.hpp"

namespace {

// Layer-3 cross-check: the fraction of sampled avoid tuples where the
// symbolic engine's static prediction matches the simulated procedure on
// every observable (success, plain-BGP success, and both negotiation
// footprint counters) under all three export policies. The gate expects
// exactly 1.0 — any disagreement is a bug in one plane or the other.
double static_agreement(const miro::eval::ExperimentPlan& plan) {
  const miro::analysis::SymbolicRouteEngine engine(plan.graph());
  const miro::core::AlternatesEngine alternates(plan.solver());
  std::map<std::size_t, miro::analysis::SymbolicRouteMap> maps;
  std::size_t agree = 0;
  std::size_t total = 0;
  for (const miro::eval::SampledTuple& tuple :
       plan.sample_tuples(plan.config().sources_per_destination)) {
    const auto [it, inserted] = maps.try_emplace(tuple.tree_index);
    if (inserted) it->second = engine.solve(tuple.destination);
    const miro::analysis::SymbolicRouteMap& map = it->second;
    // A tuple whose default path already differs between the planes counts
    // as full disagreement (predict_avoid requires the avoided AS on *its*
    // path, so it cannot be asked).
    if (map.path_of(tuple.source) !=
        plan.tree(tuple.tree_index).path_of(tuple.source)) {
      total += 3;
      continue;
    }
    for (const miro::core::ExportPolicy policy : miro::core::kAllPolicies) {
      const auto simulated = alternates.avoid_as(
          plan.tree(tuple.tree_index), tuple.source, tuple.avoid, policy);
      const auto predicted =
          engine.predict_avoid(map, tuple.source, tuple.avoid, policy);
      ++total;
      if (predicted.success == simulated.success &&
          predicted.bgp_success == simulated.bgp_success &&
          predicted.ases_contacted == simulated.ases_contacted &&
          predicted.paths_received == simulated.paths_received)
        ++agree;
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(agree) / static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  try {
  const auto args = miro::bench::BenchArgs::parse(argc, argv);
  miro::obs::ProfileRegistry prof;
  miro::obs::set_profile(&prof);
  miro::obs::MemoryRegistry mem;
  miro::obs::set_memory(&mem);
  miro::bench::BenchJsonWriter json = args.json_writer();
  json.set_profile(&prof);
  json.set_memory(&mem);
  for (const std::string& profile : args.profiles) {
    const auto start = std::chrono::steady_clock::now();
    const miro::eval::ExperimentPlan plan(args.config_for(profile));
    miro::bench::add_memory_rows(json, profile, plan);
    const auto result = miro::eval::run_avoid_as(plan);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    miro::eval::print_table_5_2(result, std::cout);
    std::cout << "(computed in " << elapsed.count() << " ms)\n\n";
    json.add(profile + ".elapsed", static_cast<double>(elapsed.count()),
             "ms");
    json.add(profile + ".single_rate", result.single_rate, "fraction");
    json.add(profile + ".source_rate", result.source_rate, "fraction");
    for (int p = 0; p < 3; ++p) {
      json.add(profile + ".multi_rate." + std::to_string(p),
               result.multi_rate[p], "fraction");
    }
    const double agree = static_agreement(plan);
    std::cout << "static/simulated agreement: " << agree << "\n\n";
    json.add(profile + ".static_agree", agree, "fraction");
  }
  miro::obs::set_memory(nullptr);
  miro::obs::set_profile(nullptr);
  return json.write() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
