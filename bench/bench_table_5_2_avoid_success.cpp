// Regenerates Table 5.2: avoid-an-AS success rates.
//
// Paper values to compare shape against:
//   Name         Single  Multi/s  Multi/e  Multi/a  Source
//   Gao 2000     27.8%   65.4%    72.9%    75.3%    89.5%
//   Gao 2003     31.2%   67.0%    74.6%    76.6%    90.4%
//   Gao 2005     29.5%   67.8%    73.7%    76.0%    91.1%
//   Sharad 2004  34.6%   56.7%    62.0%    68.1%    86.3%
// The ordering Single < Multi/s < Multi/e < Multi/a < Source and the rough
// magnitudes are the reproduction target.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eval/avoid_as.hpp"

int main(int argc, char** argv) {
  try {
  const auto args = miro::bench::BenchArgs::parse(argc, argv);
  miro::obs::ProfileRegistry prof;
  miro::obs::set_profile(&prof);
  miro::obs::MemoryRegistry mem;
  miro::obs::set_memory(&mem);
  miro::bench::BenchJsonWriter json = args.json_writer();
  json.set_profile(&prof);
  json.set_memory(&mem);
  for (const std::string& profile : args.profiles) {
    const auto start = std::chrono::steady_clock::now();
    const miro::eval::ExperimentPlan plan(args.config_for(profile));
    miro::bench::add_memory_rows(json, profile, plan);
    const auto result = miro::eval::run_avoid_as(plan);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    miro::eval::print_table_5_2(result, std::cout);
    std::cout << "(computed in " << elapsed.count() << " ms)\n\n";
    json.add(profile + ".elapsed", static_cast<double>(elapsed.count()),
             "ms");
    json.add(profile + ".single_rate", result.single_rate, "fraction");
    json.add(profile + ".source_rate", result.source_rate, "fraction");
    for (int p = 0; p < 3; ++p) {
      json.add(profile + ".multi_rate." + std::to_string(p),
               result.multi_rate[p], "fraction");
    }
  }
  miro::obs::set_memory(nullptr);
  miro::obs::set_profile(nullptr);
  return json.write() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
