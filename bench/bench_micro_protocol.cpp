// Micro benchmarks (google-benchmark): the per-operation costs of the
// building blocks — stable-route solving, candidate extraction, negotiation
// round trips, longest-prefix match, encapsulation schemes, AS-path regex —
// plus the design-choice ablation DESIGN.md calls out for the three
// Section 4.2 tunnel addressing schemes.
//
// In addition to google-benchmark's own flags, `--json <path>` writes every
// per-iteration result as {name, value, unit} in the shared bench JSON
// schema (see bench_common.hpp) for regression tracking.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/alternates.hpp"
#include "core/protocol.hpp"
#include "core/route_store.hpp"
#include "dataplane/encapsulation.hpp"
#include "net/prefix_trie.hpp"
#include "policy/aspath_regex.hpp"
#include "topology/generator.hpp"

namespace {

using namespace miro;

const topo::AsGraph& benchmark_graph() {
  static const topo::AsGraph* graph = [] {
    topo::GeneratorParams params = topo::profile("gao2005", 0.25);
    return new topo::AsGraph(topo::generate(params));
  }();
  return *graph;
}

void BM_StableRouteSolve(benchmark::State& state) {
  const topo::AsGraph& graph = benchmark_graph();
  bgp::StableRouteSolver solver(graph);
  topo::NodeId dest = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(dest));
    dest = (dest + 37) % graph.node_count();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(graph.node_count()));
}
BENCHMARK(BM_StableRouteSolve);

void BM_CandidateExtraction(benchmark::State& state) {
  const topo::AsGraph& graph = benchmark_graph();
  bgp::StableRouteSolver solver(graph);
  const bgp::RoutingTree tree = solver.solve(1);
  topo::NodeId node = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.candidates_at(tree, node));
    node = (node + 13) % graph.node_count();
    if (node == 1) node = 2;
  }
}
BENCHMARK(BM_CandidateExtraction);

void BM_AvoidAsNegotiation(benchmark::State& state) {
  const topo::AsGraph& graph = benchmark_graph();
  bgp::StableRouteSolver solver(graph);
  core::AlternatesEngine engine(solver);
  const bgp::RoutingTree tree = solver.solve(0);
  // Collect workable (source, avoid) pairs once.
  std::vector<std::pair<topo::NodeId, topo::NodeId>> tuples;
  for (topo::NodeId source = 1;
       source < graph.node_count() && tuples.size() < 64; ++source) {
    if (!tree.reachable(source)) continue;
    const auto path = tree.path_of(source);
    if (path.size() < 4) continue;
    if (graph.has_edge(source, path[2])) continue;
    tuples.emplace_back(source, path[2]);
  }
  if (tuples.empty()) {
    state.SkipWithError("no avoid tuples on this topology");
    return;
  }
  std::size_t index = 0;
  for (auto _ : state) {
    const auto& [source, avoid] = tuples[index++ % tuples.size()];
    benchmark::DoNotOptimize(engine.avoid_as(
        tree, source, avoid, core::ExportPolicy::RespectExport));
  }
}
BENCHMARK(BM_AvoidAsNegotiation);

void BM_ControlPlaneRoundTrip(benchmark::State& state) {
  const topo::AsGraph& graph = benchmark_graph();
  core::RouteStore store(graph);
  bgp::StableRouteSolver solver(graph);
  const bgp::RoutingTree tree = solver.solve(0);
  // Find an adjacent (requester, responder) pair with alternates.
  topo::NodeId requester = topo::kInvalidNode;
  topo::NodeId responder = topo::kInvalidNode;
  for (topo::NodeId source = 1; source < graph.node_count(); ++source) {
    if (!tree.reachable(source)) continue;
    const auto path = tree.path_of(source);
    if (path.size() >= 3 &&
        solver.candidates_at(tree, path[1]).size() >= 2) {
      requester = source;
      responder = path[1];
      break;
    }
  }
  if (requester == topo::kInvalidNode) {
    state.SkipWithError("no negotiable pair found");
    return;
  }
  for (auto _ : state) {
    sim::Scheduler scheduler;
    core::Bus bus(scheduler);
    core::MiroAgent a(requester, store, bus);
    core::MiroAgent b(responder, store, bus);
    bool done = false;
    a.request(responder, requester, /*destination=*/0, std::nullopt,
              std::nullopt,
              [&done](const core::NegotiationOutcome&) { done = true; });
    scheduler.run_until(100);
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_ControlPlaneRoundTrip);

void BM_PrefixTrieLookup(benchmark::State& state) {
  net::PrefixTrie<std::uint32_t> trie;
  Rng rng(4);
  for (int i = 0; i < 8192; ++i) {
    const auto address =
        net::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    trie.insert(net::Prefix(address, 8 + static_cast<int>(rng.next_below(17))),
                static_cast<std::uint32_t>(i));
  }
  std::uint32_t probe = 0x0a000001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.lookup(net::Ipv4Address(probe)));
    probe = probe * 2654435761u + 12345u;
  }
}
BENCHMARK(BM_PrefixTrieLookup);

void BM_EncapsulationScheme(benchmark::State& state) {
  const auto scheme =
      static_cast<dataplane::EncapsulationScheme>(state.range(0));
  dataplane::TunnelEndpointAs as_x(scheme,
                                   *net::Prefix::parse("12.34.56.0/24"));
  const auto r1 = as_x.add_router();
  const auto r2 = as_x.add_router();
  const auto r3 = as_x.add_router();
  as_x.add_internal_link(r1, r2, 5);
  as_x.add_internal_link(r2, r3, 4);
  const auto exit = as_x.add_exit_link(r3, 100);
  const auto endpoint = as_x.establish_tunnel(exit);
  for (auto _ : state) {
    net::Packet packet(net::Ipv4Address(1, 0, 0, 1),
                       net::Ipv4Address(9, 9, 9, 9));
    packet.encapsulate(net::Ipv4Address(1, 0, 0, 1), endpoint.address,
                       endpoint.id);
    benchmark::DoNotOptimize(as_x.deliver(std::move(packet), r1));
  }
  state.SetLabel(dataplane::to_string(scheme));
}
BENCHMARK(BM_EncapsulationScheme)->DenseRange(0, 2);

void BM_AsPathRegexMatch(benchmark::State& state) {
  const policy::AsPathRegex regex("_(701|1239|3356)_");
  const std::vector<topo::AsNumber> path{64512, 701, 3356, 15169, 8075};
  for (auto _ : state) benchmark::DoNotOptimize(regex.matches(path));
}
BENCHMARK(BM_AsPathRegexMatch);

/// Console reporter that additionally captures each measured run into the
/// bench JSON writer (aggregates and errored runs excluded).
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(bench::BenchJsonWriter& json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      json_.add(run.benchmark_name(), run.GetAdjustedRealTime(),
                benchmark::GetTimeUnitString(run.time_unit));
    }
  }

 private:
  bench::BenchJsonWriter& json_;
};

}  // namespace

int main(int argc, char** argv) {
  using miro::bench::BenchJsonWriter;
  miro::bench::take_threads_flag(argc, argv);
  BenchJsonWriter json(miro::bench::take_json_flag(argc, argv));
  json.set_config("suite", "bench_micro_protocol");
  json.set_config("topology", "gao2005 scale 0.25");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter(json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return json.write() ? 0 : 2;
}
