// Convergence ablation (Chapter 7): runs the divergence gadgets under every
// guideline and reports converged / oscillated, plus random-instance sweeps.
//
// Expected: Figure 7.1 oscillates with no guideline and converges under
// strict-only, B, C, D, and E; Figure 7.2 oscillates under strict-only (its
// whole point) and converges under B, C, D, and E; random guideline-
// conforming instances always converge.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

#include "common/table.hpp"
#include "convergence/gadgets.hpp"
#include "topology/generator.hpp"

namespace {

using namespace miro;
using conv::Guideline;

const char* verdict(const conv::MiroConvergenceModel::RunResult& result) {
  if (result.converged) return "converged";
  if (result.cycle_detected) return "OSCILLATES (state cycle proven)";
  return "no fixpoint within budget";
}

}  // namespace

int main(int argc, char** argv) {
  try {
  bench::take_threads_flag(argc, argv);  // accepted for suite uniformity
  bench::BenchJsonWriter json(bench::take_json_flag(argc, argv));
  obs::ProfileRegistry prof;
  obs::set_profile(&prof);
  obs::MemoryRegistry mem;
  obs::set_memory(&mem);
  json.set_profile(&prof);
  json.set_memory(&mem);
  const auto bench_start = std::chrono::steady_clock::now();
  TextTable table({"gadget", "guideline", "outcome", "activations"});
  const Guideline guidelines[] = {Guideline::None, Guideline::StrictOnly,
                                  Guideline::B, Guideline::C, Guideline::D,
                                  Guideline::E};
  for (Guideline guideline : guidelines) {
    {
      const conv::MiroGadget gadget = conv::make_figure_7_1(guideline);
      conv::MiroConvergenceModel model = gadget.build();
      const auto result = model.run_round_robin();
      table.add_row({"figure-7.1", conv::to_string(guideline),
                     verdict(result), std::to_string(result.activations)});
      json.add(std::string("figure-7.1.") + conv::to_string(guideline) +
                   ".converged",
               result.converged ? 1 : 0, "bool");
    }
    {
      const conv::MiroGadget gadget = conv::make_figure_7_2(guideline);
      conv::MiroConvergenceModel model = gadget.build();
      const auto result = model.run_round_robin();
      table.add_row({"figure-7.2", conv::to_string(guideline),
                     verdict(result), std::to_string(result.activations)});
      json.add(std::string("figure-7.2.") + conv::to_string(guideline) +
                   ".converged",
               result.converged ? 1 : 0, "bool");
    }
  }
  std::cout << "Chapter 7 convergence lab — gadgets under each guideline\n";
  table.print(std::cout);

  // Plain-BGP gadgets for reference.
  {
    std::cout << "\nPlain BGP gadgets (Griffin et al.):\n";
    const auto disagree = conv::make_disagree();
    bgp::PathVectorEngine sync_engine(disagree.graph, disagree.destination,
                                      disagree.hooks);
    int changes = 0;
    for (int i = 0; i < 50; ++i)
      if (sync_engine.step_synchronous()) ++changes;
    std::cout << "  DISAGREE synchronous: " << changes
              << "/50 steps changed state (oscillation)\n";
    bgp::PathVectorEngine seq_engine(disagree.graph, disagree.destination,
                                     disagree.hooks);
    std::cout << "  DISAGREE sequential: "
              << (seq_engine.run_to_stable().has_value() ? "converged"
                                                          : "diverged")
              << "\n";
    const auto bad = conv::make_bad_gadget();
    bgp::PathVectorEngine bad_engine(bad.graph, bad.destination, bad.hooks);
    std::cout << "  BAD GADGET: "
              << (bad_engine.run_to_stable(300).has_value()
                      ? "converged (unexpected!)"
                      : "no stable state (as proven)")
              << "\n";
  }

  // Random conforming instances: all must converge.
  std::cout << "\nRandom guideline-conforming instances (72 ASes, 12 tunnel "
               "wishes each):\n";
  for (Guideline guideline : {Guideline::B, Guideline::C, Guideline::D,
                              Guideline::E}) {
    std::size_t converged = 0;
    const std::size_t trials = 20;
    for (std::uint64_t seed = 1; seed <= trials; ++seed) {
      topo::GeneratorParams params = topo::profile("tiny");
      params.node_count = 72;
      params.seed = seed;
      const topo::AsGraph graph = topo::generate(params);
      Rng rng(seed * 31 + 7);
      std::vector<topo::NodeId> destinations;
      for (int i = 0; i < 4; ++i)
        destinations.push_back(
            static_cast<topo::NodeId>(rng.next_below(graph.node_count())));
      std::sort(destinations.begin(), destinations.end());
      destinations.erase(
          std::unique(destinations.begin(), destinations.end()),
          destinations.end());
      conv::ModelOptions options;
      options.guideline = guideline;
      for (int i = 0; i < 12; ++i) {
        conv::TunnelSpec spec;
        spec.requester =
            static_cast<topo::NodeId>(rng.next_below(graph.node_count()));
        spec.responder =
            static_cast<topo::NodeId>(rng.next_below(graph.node_count()));
        spec.destination = destinations[rng.next_below(destinations.size())];
        if (spec.requester == spec.responder ||
            spec.responder == spec.destination)
          continue;
        options.tunnels.push_back(spec);
      }
      if (guideline == Guideline::D) {
        options.partial_order = [](topo::NodeId, topo::NodeId fd,
                                   topo::NodeId dest) { return fd < dest; };
      }
      conv::MiroConvergenceModel model(graph, destinations, options);
      if (model.run_round_robin(512).converged) ++converged;
    }
    std::printf("  guideline %-11s %zu/%zu converged\n",
                conv::to_string(guideline), converged, trials);
    json.add(std::string("random.") + conv::to_string(guideline) +
                 ".converged",
             static_cast<double>(converged), "count");
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - bench_start);
  json.add("convergence_lab.elapsed", static_cast<double>(elapsed.count()),
           "ms");
  obs::set_memory(nullptr);
  obs::set_profile(nullptr);
  return json.write() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
