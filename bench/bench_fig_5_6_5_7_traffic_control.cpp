// Regenerates Figures 5.6/5.7: multi-homed stubs controlling inbound
// traffic through a single "power node" negotiation.
//
// Paper shape (Gao 2005): under strict policy and convert_all ~83% of stubs
// can move >= 10% of inbound traffic and about half can move >= 25%;
// flexible/convert_all reaches 98% at the 10% threshold; the
// independent_selection lower bound still moves >= 10% for ~64% (strict) to
// ~77% (flexible) of stubs. Over 90% of power nodes are top-degree ASes,
// only ~9% are immediate neighbors of the stub, ~68% sit two hops away.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eval/traffic_control.hpp"

int main(int argc, char** argv) {
  try {
  const auto args = miro::bench::BenchArgs::parse(argc, argv);
  for (const std::string& profile : args.profiles) {
    const auto start = std::chrono::steady_clock::now();
    const miro::eval::ExperimentPlan plan(args.config_for(profile));
    miro::eval::TrafficControlConfig config;
    config.stub_samples = 120;
    const auto result = miro::eval::run_traffic_control(plan, config);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    miro::eval::print(result, std::cout);
    std::cout << "(computed in " << elapsed.count() << " ms)\n\n";
  }
  return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
