// Regenerates Figures 5.6/5.7: multi-homed stubs controlling inbound
// traffic through a single "power node" negotiation.
//
// Paper shape (Gao 2005): under strict policy and convert_all ~83% of stubs
// can move >= 10% of inbound traffic and about half can move >= 25%;
// flexible/convert_all reaches 98% at the 10% threshold; the
// independent_selection lower bound still moves >= 10% for ~64% (strict) to
// ~77% (flexible) of stubs. Over 90% of power nodes are top-degree ASes,
// only ~9% are immediate neighbors of the stub, ~68% sit two hops away.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eval/traffic_control.hpp"

int main(int argc, char** argv) {
  try {
  const auto args = miro::bench::BenchArgs::parse(argc, argv);
  miro::obs::ProfileRegistry prof;
  miro::obs::set_profile(&prof);
  miro::obs::MemoryRegistry mem;
  miro::obs::set_memory(&mem);
  miro::bench::BenchJsonWriter json = args.json_writer();
  json.set_profile(&prof);
  json.set_memory(&mem);
  for (const std::string& profile : args.profiles) {
    const auto start = std::chrono::steady_clock::now();
    const miro::eval::ExperimentPlan plan(args.config_for(profile));
    miro::bench::add_memory_rows(json, profile, plan);
    miro::eval::TrafficControlConfig config;
    config.stub_samples = 120;
    const auto result = miro::eval::run_traffic_control(plan, config);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    miro::eval::print(result, std::cout);
    std::cout << "(computed in " << elapsed.count() << " ms)\n\n";
    json.add(profile + ".elapsed", static_cast<double>(elapsed.count()),
             "ms");
    json.add(profile + ".stubs_evaluated",
             static_cast<double>(result.stubs_evaluated), "count");
    for (const auto& series : result.series) {
      const std::string key = profile + "." +
                              miro::core::to_string(series.policy) +
                              (series.convert_all ? ".convert_all"
                                                  : ".independent");
      json.add(key + ".median_best_move", series.median_best_move,
               "fraction");
    }
  }
  miro::obs::set_memory(nullptr);
  miro::obs::set_profile(nullptr);
  return json.write() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
