// Perf-regression gate CLI around obs::compare_bench_json.
//
//   ./bench_compare baseline.json current.json [--threshold 0.25]
//                   [--min-magnitude X] [--mem-threshold 0.25]
//                   [--mem-min-magnitude X] [--mem-abs-limit BYTES]
//                   [--check-values] [--values-only]
//
// Exit 0 when the gate passes, 1 on any regression / missing row, 2 on
// bad usage or unreadable input. CI runs this against the checked-in
// BENCH_PR3.json baseline; a >threshold slowdown on any gated (perf-unit)
// row fails the build, and byte-unit rows ("bytes", "bytes/route",
// "bytes/edge") are gated separately by --mem-threshold (relative growth)
// and --mem-abs-limit (absolute byte growth ceiling, 0 = off) — memory
// rows come from deterministic container walks, so their gate stays tight
// even when the time threshold is loosened for noisy shared runners. All
// violations are reported in one run with a per-kind summary count in the
// exit message. --values-only is the determinism gate: it ignores
// wall-clock rows and requires every other row — byte rows included — to
// match exactly; used to compare a --threads 4 suite run against the
// --threads 1 run.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/json.hpp"
#include "obs/regression.hpp"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: bench_compare BASELINE.json CURRENT.json "
               "[--threshold X] [--min-magnitude X] [--mem-threshold X] "
               "[--mem-min-magnitude X] [--mem-abs-limit BYTES] "
               "[--check-values] [--values-only]\n");
  std::exit(2);
}

miro::JsonValue load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return miro::JsonValue::parse(buffer.str());
  } catch (const miro::Error& error) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 error.what());
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  miro::obs::RegressionOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (flag == "--threshold") options.threshold = std::atof(value());
    else if (flag == "--min-magnitude")
      options.min_magnitude = std::atof(value());
    else if (flag == "--mem-threshold")
      options.memory_threshold = std::atof(value());
    else if (flag == "--mem-min-magnitude")
      options.memory_min_magnitude = std::atof(value());
    else if (flag == "--mem-abs-limit")
      options.memory_abs_limit = std::atof(value());
    else if (flag == "--check-values") options.check_values = true;
    else if (flag == "--values-only") options.values_only = true;
    else if (!flag.empty() && flag[0] == '-') usage();
    else if (baseline_path.empty()) baseline_path = flag;
    else if (current_path.empty()) current_path = flag;
    else usage();
  }
  if (baseline_path.empty() || current_path.empty()) usage();

  const miro::JsonValue baseline = load(baseline_path);
  const miro::JsonValue current = load(current_path);
  const miro::obs::RegressionReport report =
      miro::obs::compare_bench_json(baseline, current, options);
  report.write_text(std::cout);
  return report.ok() ? 0 : 1;
}
