// Methodology check (Section 5.1): relationship-inference accuracy.
//
// The dissertation annotates measured topologies with relationships
// inferred by Gao's algorithm and by the Subramanian/Agarwal rank
// algorithm, citing Mao et al. that "the Gao algorithm produces more
// accurate inference results". On synthetic topologies the planted ground
// truth is known, so the claim is directly measurable: generate a profile,
// compute the stable BGP paths seen from a set of vantage points (what
// RouteViews collects), run both inference algorithms, and score them.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "bgp/route_solver.hpp"
#include "common/table.hpp"
#include "topology/inference.hpp"

int main(int argc, char** argv) {
  try {
  using namespace miro;
  const auto args = bench::BenchArgs::parse(argc, argv);
  obs::ProfileRegistry prof;
  obs::set_profile(&prof);
  obs::MemoryRegistry mem;
  obs::set_memory(&mem);
  bench::BenchJsonWriter json = args.json_writer();
  json.set_profile(&prof);
  json.set_memory(&mem);

  TextTable table({"profile", "vantages", "paths", "algorithm",
                   "edges seen", "accuracy", "missing", "spurious"});
  for (const std::string& profile_name : args.profiles) {
    const auto start = std::chrono::steady_clock::now();
    const topo::AsGraph truth =
        topo::generate(topo::profile(profile_name, args.scale));
    bench::add_memory_rows(json, profile_name, truth);
    bgp::StableRouteSolver solver(truth);

    // RouteViews-style observation: full tables from a few dozen vantages.
    const std::size_t vantage_count = 32;
    std::vector<topo::AsPath> paths;
    for (std::size_t v = 0; v < vantage_count; ++v) {
      const auto dest = static_cast<topo::NodeId>(
          (v * truth.node_count()) / vantage_count);
      const bgp::RoutingTree tree = solver.solve(dest);
      for (topo::NodeId source = 0; source < truth.node_count(); ++source) {
        if (source == dest || !tree.reachable(source)) continue;
        topo::AsPath path;
        for (topo::NodeId node : tree.path_of(source))
          path.push_back(truth.as_number(node));
        paths.push_back(std::move(path));
      }
    }

    struct Run {
      const char* name;
      topo::AsGraph inferred;
    };
    Run runs[] = {{"gao", topo::infer_gao(paths)},
                  {"rank", topo::infer_rank(paths)}};
    for (const Run& run : runs) {
      const auto accuracy = topo::compare_inference(truth, run.inferred);
      table.add_row(
          {profile_name, std::to_string(vantage_count),
           std::to_string(paths.size()), run.name,
           std::to_string(accuracy.classified_correct +
                          accuracy.classified_wrong),
           TextTable::percent(accuracy.accuracy()),
           std::to_string(accuracy.edges_missing),
           std::to_string(accuracy.edges_spurious)});
      json.add(profile_name + "." + run.name + ".accuracy",
               accuracy.accuracy(), "fraction");
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    json.add(profile_name + ".elapsed",
             static_cast<double>(elapsed.count()), "ms");
  }
  std::cout << "Relationship-inference accuracy against planted ground "
               "truth (Section 5.1 methodology)\n";
  table.print(std::cout);
  std::cout << "(expected: Gao classifies most observed edges correctly and "
               "beats the rank algorithm, matching Mao et al.'s finding the "
               "dissertation cites)\n";
  obs::set_memory(nullptr);
  obs::set_profile(nullptr);
  return json.write() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
