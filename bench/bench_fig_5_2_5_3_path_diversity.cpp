// Regenerates Figures 5.2/5.3: the number of available alternate routes per
// (source, destination) pair, sweeping negotiation scope and export policy.
//
// Paper shape to reproduce: only a small fraction of pairs has no alternate
// path even under the strictest policy (~5-13%); "more than half of the AS
// pairs can find at least tens of alternate paths"; the respect-export and
// most-flexible curves nearly coincide; the "path" scope grows much faster
// than "1-hop".
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eval/path_diversity.hpp"

int main(int argc, char** argv) {
  try {
  const auto args = miro::bench::BenchArgs::parse(argc, argv);
  miro::obs::ProfileRegistry prof;
  miro::obs::set_profile(&prof);
  miro::obs::MemoryRegistry mem;
  miro::obs::set_memory(&mem);
  miro::bench::BenchJsonWriter json = args.json_writer();
  json.set_profile(&prof);
  json.set_memory(&mem);
  for (const std::string& profile : args.profiles) {
    const auto start = std::chrono::steady_clock::now();
    const miro::eval::ExperimentPlan plan(args.config_for(profile));
    miro::bench::add_memory_rows(json, profile, plan);
    const auto result = miro::eval::run_path_diversity(plan);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    miro::eval::print(result, std::cout);
    std::cout << "(computed in " << elapsed.count() << " ms)\n\n";
    json.add(profile + ".elapsed", static_cast<double>(elapsed.count()),
             "ms");
    for (const miro::eval::DiversityRow& row : result.rows) {
      const std::string key = profile + "." +
                              miro::core::to_string(row.scope) + "." +
                              miro::core::to_string(row.policy);
      json.add(key + ".fraction_zero", row.fraction_zero, "fraction");
      json.add(key + ".p50", row.p50, "paths");
    }
  }
  miro::obs::set_memory(nullptr);
  miro::obs::set_profile(nullptr);
  return json.write() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
