// Regenerates Figure 5.1: the node degree distribution.
//
// Paper shape: a heavy-tailed distribution where "only 0.2% of the ASes has
// more than 200 neighbors, and less than 1% has more than 40"; the
// high-degree nodes are the tier-1 core.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eval/dataset_report.hpp"
#include "topology/generator.hpp"

int main(int argc, char** argv) {
  try {
  const auto args = miro::bench::BenchArgs::parse(argc, argv);
  miro::obs::ProfileRegistry prof;
  miro::obs::set_profile(&prof);
  miro::obs::MemoryRegistry mem;
  miro::obs::set_memory(&mem);
  miro::bench::BenchJsonWriter json = args.json_writer();
  json.set_profile(&prof);
  json.set_memory(&mem);
  for (const std::string& profile : args.profiles) {
    const auto start = std::chrono::steady_clock::now();
    miro::eval::print_degree_distribution(profile, args.scale, std::cout);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    std::cout << "\n";
    json.add(profile + ".elapsed", static_cast<double>(elapsed.count()),
             "ms");
    const miro::topo::AsGraph graph =
        miro::topo::generate(miro::topo::profile(profile, args.scale));
    miro::bench::add_memory_rows(json, profile, graph);
  }
  miro::obs::set_memory(nullptr);
  miro::obs::set_profile(nullptr);
  return json.write() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
