// Regenerates Figure 5.1: the node degree distribution.
//
// Paper shape: a heavy-tailed distribution where "only 0.2% of the ASes has
// more than 200 neighbors, and less than 1% has more than 40"; the
// high-degree nodes are the tier-1 core.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eval/dataset_report.hpp"

int main(int argc, char** argv) {
  try {
  const auto args = miro::bench::BenchArgs::parse(argc, argv);
  for (const std::string& profile : args.profiles) {
    miro::eval::print_degree_distribution(profile, args.scale, std::cout);
    std::cout << "\n";
  }
  return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
